#include "store/index_store.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/index_file.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/string_util.h"

namespace jinfer {
namespace store {

namespace fs = std::filesystem;

namespace {

/// Registry handles for the store's counters, dual-written beside the
/// per-instance IndexStoreStats (DESIGN.md §13.1).
struct StoreMetrics {
  obs::Counter& loads;
  obs::Counter& load_hits;
  obs::Counter& load_misses;
  obs::Counter& writes;
  obs::Counter& skipped_writes;
  obs::Counter& quarantined;
  obs::Counter& put_retries;
  obs::Counter& load_retries;
  obs::Histogram& load_nanos;
  obs::Histogram& put_nanos;

  static StoreMetrics& Get() {
    static StoreMetrics* m = new StoreMetrics{
        obs::Registry::Global().counter(obs::kStoreLoadsTotal),
        obs::Registry::Global().counter(obs::kStoreLoadHitsTotal),
        obs::Registry::Global().counter(obs::kStoreLoadMissesTotal),
        obs::Registry::Global().counter(obs::kStoreWritesTotal),
        obs::Registry::Global().counter(obs::kStoreSkippedWritesTotal),
        obs::Registry::Global().counter(obs::kStoreQuarantinedTotal),
        obs::Registry::Global().counter(obs::kStorePutRetriesTotal),
        obs::Registry::Global().counter(obs::kStoreLoadRetriesTotal),
        obs::Registry::Global().histogram(obs::kStoreLoadNanos),
        obs::Registry::Global().histogram(obs::kStorePutNanos),
    };
    return *m;
  }
};

constexpr const char* kFileSuffix = ".jidx";
constexpr const char* kQuarantineDir = "quarantine";

/// Writes `bytes` to `path` and fsyncs before closing, so the subsequent
/// rename publishes fully-durable content. Failure leaves no file behind
/// (injected fsync faults take the identical cleanup path, so chaos runs
/// prove the no-partial-file invariant, not a parallel code path).
util::Status WriteFileDurably(const std::string& path,
                              const std::vector<uint8_t>& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return util::IoStatusFromErrno(errno, util::StrFormat(
        "open(%s) for write: %s", path.c_str(), std::strerror(errno)));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      util::Status status = util::IoStatusFromErrno(errno, util::StrFormat(
          "write(%s): %s", path.c_str(), std::strerror(errno)));
      ::close(fd);
      ::unlink(path.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  util::Status fsync_status = util::FailpointHit("store.put.fsync");
  if (fsync_status.ok() && ::fsync(fd) != 0) {
    fsync_status = util::IoStatusFromErrno(errno, util::StrFormat(
        "fsync(%s): %s", path.c_str(), std::strerror(errno)));
  }
  if (!fsync_status.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return fsync_status;
  }
  ::close(fd);
  return util::Status::OK();
}

}  // namespace

util::Result<IndexStore> IndexStore::Open(std::string dir,
                                          IndexStoreOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError(util::StrFormat(
        "cannot create store directory %s: %s", dir.c_str(),
        ec.message().c_str()));
  }
  if (!fs::is_directory(dir, ec) || ec) {
    return util::Status::IoError(util::StrFormat(
        "store path %s is not a directory", dir.c_str()));
  }
  // Surface a read-only directory here, once, instead of letting every
  // Put fail silently later (the cache treats Put as best-effort, so a
  // misconfigured store would otherwise just disable persistence).
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    return util::Status::IoError(util::StrFormat(
        "store directory %s is not writable: %s", dir.c_str(),
        std::strerror(errno)));
  }
  return IndexStore(std::move(dir), options);
}

std::string IndexStore::PathFor(const InstanceFingerprint& fingerprint) const {
  return (fs::path(dir_) / ("index-" + fingerprint.ToHex() + kFileSuffix))
      .string();
}

bool IndexStore::Contains(const InstanceFingerprint& fingerprint) const {
  std::error_code ec;
  return fs::exists(PathFor(fingerprint), ec) && !ec;
}

util::Result<std::shared_ptr<const core::SignatureIndex>> IndexStore::Load(
    const InstanceFingerprint& fingerprint) const {
  StoreMetrics& metrics = StoreMetrics::Get();
  obs::ScopedSpan span(obs::SpanKind::kStoreLoad, /*trace_id=*/0,
                       &metrics.load_nanos);
  {
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_->loads;
    metrics.loads.Inc();
  }
  const std::string path = PathFor(fingerprint);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_->load_misses;
    metrics.load_misses.Inc();
    return util::Status::NotFound(util::StrFormat(
        "no stored index for fingerprint %s", fingerprint.ToHex().c_str()));
  }

  // Transient mapping faults (fd/memory pressure, injected store.load.mmap)
  // are retried in place; they say nothing about the bytes on disk, so the
  // file is NOT quarantined when they exhaust the policy — the caller
  // (IndexCache) degrades to a fresh build and the file stays for the next
  // load. Only permanent validation failures condemn the file.
  uint64_t retries = 0;
  util::Result<MappedIndex> mapped = util::RetryCall(
      options_.retry,
      [&]() -> util::Result<MappedIndex> {
        util::Status injected = util::FailpointHit("store.load.mmap");
        if (!injected.ok()) return injected;
        return LoadMappedIndex(path);
      },
      &retries);
  if (retries > 0) {
    std::lock_guard<std::mutex> lock(*mu_);
    stats_->load_retries += retries;
    metrics.load_retries.Inc(retries);
  }
  if (!mapped.ok() && util::IsTransient(mapped.status())) {
    return mapped.status();
  }
  if (mapped.ok() && !(mapped->fingerprint == fingerprint)) {
    mapped = util::Status::ParseError(util::StrFormat(
        "stored index %s carries fingerprint %s — file renamed or header "
        "corrupted", path.c_str(), mapped->fingerprint.ToHex().c_str()));
  }
  if (!mapped.ok()) {
    Quarantine(path);
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_->quarantined;
    metrics.quarantined.Inc();
    return util::Status::ParseError(util::StrFormat(
        "stored index %s rejected and quarantined: %s", path.c_str(),
        mapped.status().message().c_str()));
  }

  std::lock_guard<std::mutex> lock(*mu_);
  ++stats_->load_hits;
  metrics.load_hits.Inc();
  return std::move(mapped)->index;
}

util::Status IndexStore::Put(const core::SignatureIndex& index,
                             const InstanceFingerprint& fingerprint) const {
  StoreMetrics& metrics = StoreMetrics::Get();
  obs::ScopedSpan span(obs::SpanKind::kStorePut, /*trace_id=*/0,
                       &metrics.put_nanos);
  const std::string path = PathFor(fingerprint);
  std::error_code ec;
  if (fs::exists(path, ec) && !ec) {
    // Content-addressed: a *valid* existing file already holds exactly
    // these bytes (serialization is deterministic), so rewriting buys
    // nothing. Validate before skipping — skipping over a corrupt
    // leftover (e.g. a failed quarantine) would wedge the slot forever.
    auto existing = LoadMappedIndex(path);
    if (existing.ok() && existing->fingerprint == fingerprint) {
      std::lock_guard<std::mutex> lock(*mu_);
      ++stats_->skipped_writes;
      metrics.skipped_writes.Inc();
      return util::Status::OK();
    }
    Quarantine(path);
    std::lock_guard<std::mutex> lock(*mu_);
    ++stats_->quarantined;
    metrics.quarantined.Inc();
  }

  const std::vector<uint8_t> bytes = SerializeIndexFile(index, fingerprint);

  // Transient publish failures retry with backoff; each attempt runs the
  // full write→fsync→rename→dirsync sequence on a fresh temp name, so a
  // dirsync that failed after its rename published the file is simply
  // redone (re-renaming identical bytes is harmless — content-addressed).
  uint64_t retries = 0;
  util::Status published =
      util::RetryCall(options_.retry, [&] { return PublishOnce(bytes, path); },
                      &retries);
  std::lock_guard<std::mutex> lock(*mu_);
  stats_->put_retries += retries;
  if (retries > 0) metrics.put_retries.Inc(retries);
  if (!published.ok()) return published;
  ++stats_->writes;
  metrics.writes.Inc();
  return util::Status::OK();
}

util::Status IndexStore::PublishOnce(const std::vector<uint8_t>& bytes,
                                     const std::string& path) const {
  // Unique temp name per (process, attempt): concurrent writers — even
  // across processes — never collide, and the same-directory rename is
  // atomic, so readers only ever see complete files.
  static std::atomic<uint64_t> temp_counter{0};
  const std::string temp = (fs::path(dir_) /
                            util::StrFormat(
                                ".tmp-%ld-%llu%s", static_cast<long>(::getpid()),
                                static_cast<unsigned long long>(
                                    temp_counter.fetch_add(1)),
                                kFileSuffix))
                               .string();
  JINFER_RETURN_NOT_OK(WriteFileDurably(temp, bytes));
  util::Status rename_status = util::FailpointHit("store.put.rename");
  if (rename_status.ok()) {
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
      rename_status = util::Status::IoError(util::StrFormat(
          "rename(%s -> %s) failed", temp.c_str(), path.c_str()));
    }
  }
  if (!rename_status.ok()) {
    // An unpublished temp must never outlive its attempt: readers scan the
    // directory in recovery paths, and leaked temps are the partial-file
    // class the write-temp→fsync→rename discipline exists to rule out.
    std::error_code ec;
    fs::remove(temp, ec);
    return rename_status;
  }
  // The rename publishes the name; fsyncing the directory journals it.
  // Without this a power loss can roll back to a state where the fsynced
  // *contents* exist but the directory entry does not — Put would have
  // reported a durable write that evaporates on reboot.
  util::Status dirsync = util::FailpointHit("store.put.dirsync");
  if (dirsync.ok()) {
    int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0 || ::fsync(dfd) != 0) {
      dirsync = util::IoStatusFromErrno(errno, util::StrFormat(
          "fsync(%s): %s", dir_.c_str(), std::strerror(errno)));
    }
    if (dfd >= 0) ::close(dfd);
  }
  return dirsync;
}

void IndexStore::Quarantine(const std::string& path) const {
  std::error_code ec;
  const fs::path qdir = fs::path(dir_) / kQuarantineDir;
  fs::create_directories(qdir, ec);
  if (ec) {
    // No quarantine home — removal is still mandatory: a corrupt file
    // left in its slot would be re-mapped (and re-fail) forever.
    fs::remove(path, ec);
    return;
  }
  fs::path target = qdir / fs::path(path).filename();
  // Keep earlier quarantined generations: suffix until the name is free.
  for (int attempt = 1; fs::exists(target, ec) && attempt < 100; ++attempt) {
    target = qdir / (fs::path(path).filename().string() +
                     util::StrFormat(".%d", attempt));
  }
  fs::rename(path, target, ec);
  if (ec) fs::remove(path, ec);  // Last resort: never re-load corrupt bytes.
}

IndexStoreStats IndexStore::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return *stats_;
}

}  // namespace store
}  // namespace jinfer
