#include "store/fingerprint.h"

#include <cstring>

#include "util/bitset.h"
#include "util/string_util.h"

namespace jinfer {
namespace store {

namespace {

/// Two independently-mixed 64-bit lanes absorbed in lockstep. Each lane is
/// a chained util::Mix64 with a lane-distinct tweak, so the pair behaves as
/// one 128-bit digest: collapsing it would bring the collision probability
/// for distinct instances into birthday range for large catalogs.
class Hasher128 {
 public:
  void Absorb(uint64_t x) {
    hi_ = util::Mix64(hi_ + x);
    lo_ = util::Mix64(lo_ ^ (x * 0xc2b2ae3d27d4eb4fULL));
  }

  void AbsorbBytes(const void* data, size_t len) {
    Absorb(len);
    const unsigned char* p = static_cast<const unsigned char*>(data);
    while (len >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      Absorb(word);
      p += 8;
      len -= 8;
    }
    if (len > 0) {
      uint64_t word = 0;
      std::memcpy(&word, p, len);
      Absorb(word);
    }
  }

  void AbsorbString(std::string_view s) { AbsorbBytes(s.data(), s.size()); }

  /// Domain-separated type tags (the rel::ValueType enumerator values —
  /// 'N'/'I'/'D'/'S') keep e.g. the int 1 and the string "\x01" from
  /// colliding. Reads a decoded cell view, so the columnar walk below
  /// absorbs exactly the byte stream the original row-major cell walk did.
  void AbsorbCell(const rel::CellView& cell) {
    Absorb(static_cast<uint64_t>(cell.type));
    switch (cell.type) {
      case rel::ValueType::kNull:
        break;
      case rel::ValueType::kInt:
      case rel::ValueType::kDouble:
        Absorb(static_cast<uint64_t>(cell.num));
        break;
      case rel::ValueType::kString:
        AbsorbString(cell.str);
        break;
    }
  }

  /// Cells are absorbed in row-major order through the column dictionaries
  /// (two array reads per cell, no Value temporaries, no variant dispatch).
  /// The byte stream is identical to the pre-columnar cell-by-cell digest —
  /// the compatibility decision DESIGN.md §9 documents and
  /// tests/store/fingerprint_compat_test.cc pins against golden seed
  /// values, which is what keeps pre-refactor .jidx files addressable.
  void AbsorbRelation(const rel::Relation& rel) {
    AbsorbString(rel.schema().relation_name());
    Absorb(rel.num_attributes());
    for (const std::string& attr : rel.schema().attribute_names()) {
      AbsorbString(attr);
    }
    Absorb(rel.num_rows());
    const rel::ColumnTable& t = rel.columns();
    for (size_t row = 0; row < t.num_rows(); ++row) {
      for (size_t col = 0; col < t.num_columns(); ++col) {
        AbsorbCell(t.cell(row, col));
      }
    }
  }

  InstanceFingerprint Finish() const { return {hi_, lo_}; }

 private:
  uint64_t hi_ = 0x243f6a8885a308d3ULL;  // pi digits — nothing-up-my-sleeve.
  uint64_t lo_ = 0x13198a2e03707344ULL;
};

}  // namespace

std::string InstanceFingerprint::ToHex() const {
  return util::StrFormat("%016llx%016llx", static_cast<unsigned long long>(hi),
                         static_cast<unsigned long long>(lo));
}

InstanceFingerprint FingerprintInstance(const rel::Relation& r,
                                        const rel::Relation& p,
                                        bool compress) {
  Hasher128 h;
  h.AbsorbRelation(r);
  h.AbsorbRelation(p);
  h.Absorb(compress ? 1 : 0);
  return h.Finish();
}

}  // namespace store
}  // namespace jinfer
