// InstanceFingerprint: the 128-bit content fingerprint of an inference
// instance, shared by the in-memory IndexCache (PR 3) and the persistent
// index store (this PR) — one identity from first request to on-disk file.
//
// It digests relation names, attribute names, every cell value (with its
// runtime type) and the compression flag. Equal instances always collide;
// distinct instances collide with probability ~2^-128 per pair, which both
// cache and store treat as never (a collision would silently alias two
// instances).
//
// Determinism: the digest folds explicit type tags and payload bytes,
// never pointer values or std::hash, so it is stable across runs — which
// is what lets store files be content-addressed by fingerprint. String
// bytes are absorbed in native byte order, so fingerprints are NOT
// portable across endianness; the store's file format carries a byte-order
// marker and refuses foreign files for the same reason (DESIGN.md §8).
//
// Stability across the columnar refactor: the digest now walks cells
// through the relations' column dictionaries, but absorbs the byte stream
// of the original row-major cell walk unchanged — the type tags ARE the
// rel::ValueType enumerator values. Content-equality with pre-columnar
// fingerprints is pinned by tests/store/fingerprint_compat_test.cc
// (frozen reference hasher + golden seed values); see DESIGN.md §9 for
// why the dictionary+codes digest was rejected.

#ifndef JINFER_STORE_FINGERPRINT_H_
#define JINFER_STORE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"

namespace jinfer {
namespace store {

struct InstanceFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const InstanceFingerprint& a,
                         const InstanceFingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }

  /// 32 lowercase hex digits (hi then lo) — the store's file-name stem.
  std::string ToHex() const;
};

/// Fingerprints (r, p, compress). The SignatureIndex thread count is
/// deliberately excluded: it never changes the built index.
InstanceFingerprint FingerprintInstance(const rel::Relation& r,
                                        const rel::Relation& p, bool compress);

}  // namespace store
}  // namespace jinfer

#endif  // JINFER_STORE_FINGERPRINT_H_
