#include "store/index_file.h"

#include <cstring>
#include <limits>

#include "util/checksum.h"
#include "util/string_util.h"

namespace jinfer {
namespace store {

namespace {

size_t AlignUp(size_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Appends `len` bytes to `out`, zero-filling the alignment gap first when
/// asked. Zero gaps (not skipped garbage) keep serialization deterministic.
void AppendBytes(std::vector<uint8_t>& out, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

void PadTo(std::vector<uint8_t>& out, size_t offset) {
  JINFER_CHECK(out.size() <= offset, "serializer wrote past section offset");
  out.resize(offset, 0);
}

void AppendString(std::vector<uint8_t>& out, const std::string& s) {
  JINFER_CHECK(s.size() <= std::numeric_limits<uint32_t>::max(),
               "name too long for the index file format");
  uint32_t len = static_cast<uint32_t>(s.size());
  AppendBytes(out, &len, sizeof(len));
  AppendBytes(out, s.data(), s.size());
}

std::vector<uint8_t> EncodeNames(const core::Omega& omega) {
  std::vector<uint8_t> out;
  AppendString(out, omega.r_relation_name());
  for (size_t i = 0; i < omega.num_r_attrs(); ++i) {
    AppendString(out, omega.r_attr_name(i));
  }
  AppendString(out, omega.p_relation_name());
  for (size_t j = 0; j < omega.num_p_attrs(); ++j) {
    AppendString(out, omega.p_attr_name(j));
  }
  return out;
}

/// Sequential reader over the names section; every length is bounds-checked
/// against the section before the bytes are touched.
struct NamesReader {
  const uint8_t* p;
  size_t remaining;

  util::Result<std::string> Next() {
    if (remaining < sizeof(uint32_t)) {
      return util::Status::ParseError(
          "index file: names section truncated (missing length)");
    }
    uint32_t len;
    std::memcpy(&len, p, sizeof(len));
    p += sizeof(len);
    remaining -= sizeof(len);
    if (remaining < len) {
      return util::Status::ParseError(
          "index file: names section truncated (string overruns section)");
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    remaining -= len;
    return s;
  }
};

}  // namespace

std::vector<uint8_t> SerializeIndexFile(
    const core::SignatureIndex& index, const InstanceFingerprint& fingerprint) {
  const std::vector<uint8_t> names = EncodeNames(index.omega());
  const std::span<const core::SignatureClass> classes = index.classes();
  const std::span<const uint32_t> r_codes = index.r_codes();
  const std::span<const uint32_t> p_codes = index.p_codes();

  IndexFileHeader header;  // Aggregate with defaulted members, no padding.
  static_assert(sizeof(IndexFileHeader) ==
                    16 + 16 + 8 + 8 + 8 + 8 + 16 +
                        kNumSections * sizeof(SectionExtent),
                "IndexFileHeader has implicit padding");
  header.flags = index.compressed() ? kFlagCompressed : 0;
  header.fingerprint_hi = fingerprint.hi;
  header.fingerprint_lo = fingerprint.lo;
  header.num_tuples = index.num_tuples();
  header.num_classes = classes.size();
  header.num_r_attrs = static_cast<uint32_t>(index.omega().num_r_attrs());
  header.num_p_attrs = static_cast<uint32_t>(index.omega().num_p_attrs());
  header.num_r_rows = index.num_r_rows();
  header.num_p_rows = index.num_p_rows();

  size_t offset = AlignUp(sizeof(IndexFileHeader));
  const size_t section_bytes[kNumSections] = {
      names.size(), classes.size_bytes(), r_codes.size_bytes(),
      p_codes.size_bytes()};
  for (size_t s = 0; s < kNumSections; ++s) {
    header.sections[s].offset = offset;
    header.sections[s].bytes = section_bytes[s];
    offset = AlignUp(offset + section_bytes[s]);
  }
  header.file_bytes = offset + sizeof(IndexFileFooter);

  std::vector<uint8_t> out;
  out.reserve(header.file_bytes);
  AppendBytes(out, &header, sizeof(header));

  PadTo(out, header.sections[kSectionNames].offset);
  AppendBytes(out, names.data(), names.size());

  // SignatureClass carries 7 trailing padding bytes; write each record
  // through a zeroed staging copy so equal indexes always serialize to
  // equal bytes (content-addressing and the checksum depend on it).
  PadTo(out, header.sections[kSectionClasses].offset);
  for (const core::SignatureClass& sc : classes) {
    alignas(core::SignatureClass) uint8_t staged[sizeof(core::SignatureClass)];
    std::memset(staged, 0, sizeof(staged));
    core::SignatureClass* rec = new (staged) core::SignatureClass;
    rec->signature = sc.signature;
    rec->count = sc.count;
    rec->rep_r = sc.rep_r;
    rec->rep_p = sc.rep_p;
    rec->maximal = sc.maximal;
    AppendBytes(out, staged, sizeof(staged));
  }

  PadTo(out, header.sections[kSectionRCodes].offset);
  AppendBytes(out, r_codes.data(), r_codes.size_bytes());
  PadTo(out, header.sections[kSectionPCodes].offset);
  AppendBytes(out, p_codes.data(), p_codes.size_bytes());

  PadTo(out, header.file_bytes - sizeof(IndexFileFooter));
  IndexFileFooter footer;
  footer.checksum = util::Checksum64Of(out.data(), out.size());
  AppendBytes(out, &footer, sizeof(footer));
  JINFER_CHECK(out.size() == header.file_bytes, "serializer size bookkeeping");
  return out;
}

util::Result<IndexFileView> ValidateIndexFile(std::span<const uint8_t> bytes) {
  if (bytes.size() < sizeof(IndexFileHeader) + sizeof(IndexFileFooter)) {
    return util::Status::ParseError(util::StrFormat(
        "index file: %zu bytes is smaller than header + footer",
        bytes.size()));
  }
  // The header is copied out (it is tiny) so validation never depends on
  // the mapped bytes being aligned; the section casts below are covered by
  // the 64-byte offset alignment checks instead.
  IndexFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));

  if (header.magic != kIndexFileMagic) {
    return util::Status::ParseError(
        util::StrFormat("index file: bad magic 0x%08x", header.magic));
  }
  if (header.byte_order != kByteOrderMarker) {
    return util::Status::ParseError(util::StrFormat(
        "index file: byte-order marker 0x%08x does not match this "
        "platform (file written on a foreign-endian machine?)",
        header.byte_order));
  }
  if (header.version != kIndexFileVersion) {
    return util::Status::ParseError(util::StrFormat(
        "index file: version %u not supported (this build reads version %u)",
        header.version, kIndexFileVersion));
  }
  if (header.file_bytes != bytes.size()) {
    return util::Status::ParseError(util::StrFormat(
        "index file: header claims %llu bytes but the file has %zu "
        "(truncated or over-long)",
        static_cast<unsigned long long>(header.file_bytes), bytes.size()));
  }

  // Checksum before trusting any variable-size content: a single flipped
  // bit anywhere (header included — it was absorbed too) is caught here.
  IndexFileFooter footer;
  std::memcpy(&footer, bytes.data() + bytes.size() - sizeof(footer),
              sizeof(footer));
  if (footer.magic != kIndexFileMagic || footer.reserved != 0) {
    return util::Status::ParseError("index file: bad footer");
  }
  const uint64_t expected =
      util::Checksum64Of(bytes.data(), bytes.size() - sizeof(footer));
  if (footer.checksum != expected) {
    return util::Status::ParseError(util::StrFormat(
        "index file: checksum mismatch (stored %016llx, computed %016llx)",
        static_cast<unsigned long long>(footer.checksum),
        static_cast<unsigned long long>(expected)));
  }

  if (header.num_r_attrs == 0 || header.num_p_attrs == 0 ||
      static_cast<uint64_t>(header.num_r_attrs) * header.num_p_attrs >
          core::JoinPredicate::kMaxBits) {
    return util::Status::ParseError("index file: schema widths out of range");
  }
  // Overflow-safe arithmetic: counts are capped well below 2^64 before any
  // product is formed, and |D| is checked by division — a wrapped multiply
  // must never validate a corrupt header.
  constexpr uint64_t kMaxCount = uint64_t{1} << 40;
  if (header.num_classes > kMaxCount || header.num_r_rows > kMaxCount ||
      header.num_p_rows > kMaxCount) {
    return util::Status::ParseError("index file: counts out of range");
  }
  if (header.num_r_rows == 0 || header.num_p_rows == 0 ||
      header.num_tuples / header.num_r_rows != header.num_p_rows ||
      header.num_tuples % header.num_r_rows != 0) {
    return util::Status::ParseError(
        "index file: row counts inconsistent with num_tuples");
  }

  // Section directory: in-bounds, 64-byte aligned, ascending and disjoint.
  const uint64_t payload_end = header.file_bytes - sizeof(IndexFileFooter);
  uint64_t previous_end = sizeof(IndexFileHeader);
  for (size_t s = 0; s < kNumSections; ++s) {
    const SectionExtent& e = header.sections[s];
    if (e.offset % kSectionAlignment != 0) {
      return util::Status::ParseError(
          util::StrFormat("index file: section %zu misaligned", s));
    }
    if (e.offset < previous_end || e.bytes > payload_end ||
        e.offset > payload_end - e.bytes) {
      return util::Status::ParseError(util::StrFormat(
          "index file: section %zu extent out of bounds or overlapping", s));
    }
    previous_end = e.offset + e.bytes;
  }

  const uint64_t expect_classes =
      header.num_classes * sizeof(core::SignatureClass);
  const uint64_t expect_r = header.num_r_rows * header.num_r_attrs * 4;
  const uint64_t expect_p = header.num_p_rows * header.num_p_attrs * 4;
  if (header.sections[kSectionClasses].bytes != expect_classes ||
      header.sections[kSectionRCodes].bytes != expect_r ||
      header.sections[kSectionPCodes].bytes != expect_p) {
    return util::Status::ParseError(
        "index file: section sizes disagree with the header counts");
  }

  IndexFileView view;
  view.header = reinterpret_cast<const IndexFileHeader*>(bytes.data());
  view.fingerprint = {header.fingerprint_hi, header.fingerprint_lo};
  view.compressed = (header.flags & kFlagCompressed) != 0;

  NamesReader names{bytes.data() + header.sections[kSectionNames].offset,
                    static_cast<size_t>(header.sections[kSectionNames].bytes)};
  JINFER_ASSIGN_OR_RETURN(view.r_relation, names.Next());
  for (uint32_t i = 0; i < header.num_r_attrs; ++i) {
    JINFER_ASSIGN_OR_RETURN(std::string attr, names.Next());
    view.r_attrs.push_back(std::move(attr));
  }
  JINFER_ASSIGN_OR_RETURN(view.p_relation, names.Next());
  for (uint32_t j = 0; j < header.num_p_attrs; ++j) {
    JINFER_ASSIGN_OR_RETURN(std::string attr, names.Next());
    view.p_attrs.push_back(std::move(attr));
  }
  if (names.remaining != 0) {
    return util::Status::ParseError(
        "index file: trailing bytes in the names section");
  }

  view.classes = std::span<const core::SignatureClass>(
      reinterpret_cast<const core::SignatureClass*>(
          bytes.data() + header.sections[kSectionClasses].offset),
      header.num_classes);
  view.r_codes = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(
          bytes.data() + header.sections[kSectionRCodes].offset),
      header.num_r_rows * header.num_r_attrs);
  view.p_codes = std::span<const uint32_t>(
      reinterpret_cast<const uint32_t*>(
          bytes.data() + header.sections[kSectionPCodes].offset),
      header.num_p_rows * header.num_p_attrs);
  return view;
}

}  // namespace store
}  // namespace jinfer
