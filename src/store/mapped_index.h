// Zero-copy loading of persisted signature indexes.
//
// MappedFile is a small RAII wrapper over open+mmap (read-only, shared);
// LoadMappedIndex maps an index file, validates it (header, sections,
// checksum — see index_file.h), and adapts the mapped sections behind the
// ordinary core::SignatureIndex read interface via
// SignatureIndex::FromSections. The class table and the encoded-row arrays
// are *not* copied: the returned index's spans point straight into the
// mapping, which it keeps alive through shared ownership — sessions may
// outlive the store, the cache, and each other.
//
// Cost model: validation touches every page once (the checksum pass), the
// signature→class hash map is rebuilt in O(#classes), and nothing else is
// materialized — on the (3,3,1000,100) bench instance this is ≥10× cheaper
// than rebuilding the index from the relations (BM_ColdStart* in
// bench/throughput_sessions.cc).

#ifndef JINFER_STORE_MAPPED_INDEX_H_
#define JINFER_STORE_MAPPED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/signature_index.h"
#include "store/fingerprint.h"
#include "util/result.h"

namespace jinfer {
namespace store {

/// Read-only memory mapping of a whole file. Move-only; unmaps on
/// destruction.
class MappedFile {
 public:
  static util::Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }

 private:
  MappedFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

/// A successfully mapped and validated index, plus the file metadata a
/// caller needs to cross-check it (the store compares `fingerprint`
/// against the one it asked for).
struct MappedIndex {
  std::shared_ptr<const core::SignatureIndex> index;
  InstanceFingerprint fingerprint;
  bool compressed = false;
  uint64_t file_bytes = 0;
};

/// Maps `path` and adapts it as a SignatureIndex (zero-copy; the index
/// owns the mapping). Fails with IoError when the file cannot be opened or
/// mapped and ParseError when it does not validate; never crashes on
/// corrupt input.
util::Result<MappedIndex> LoadMappedIndex(const std::string& path);

}  // namespace store
}  // namespace jinfer

#endif  // JINFER_STORE_MAPPED_INDEX_H_
