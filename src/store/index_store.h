// IndexStore: a directory of persisted signature indexes, content-addressed
// by instance fingerprint.
//
// One file per instance, named index-<32 hex digits>.jidx after the
// 128-bit fingerprint of (schema, rows, compress) — the same fingerprint
// the runtime IndexCache keys on, so cache and store agree on identity by
// construction. Because serialization is deterministic, writers racing on
// one fingerprint produce byte-identical files and the last rename wins
// harmlessly.
//
// Durability discipline (Put): serialize to a unique temporary in the same
// directory, fsync, then rename(2) onto the final name — readers and
// concurrent processes only ever observe complete files. Loads mmap the
// file read-only and validate header + checksum before any section is
// trusted (mapped_index.h).
//
// Corruption quarantine (Load): a file that fails validation — truncated,
// bit-rotted, version-mismatched, or carrying the wrong fingerprint — is
// moved into quarantine/ under the store directory and the load reports a
// ParseError. The slot is then free: the next Put repopulates it with a
// fresh build, and the quarantined bytes stay available for post-mortem.
// A corrupt store therefore degrades to a cold one; it never crashes the
// runtime and never wedges a fingerprint permanently.
//
// Thread/process safety: Load and Put are safe from concurrent threads and
// processes (atomic rename, unique temp names, stats under a mutex).
//
// Failure domains (DESIGN.md §10): every fallible syscall boundary is
// classified transient-vs-permanent (util::IoStatusFromErrno) and carries a
// failpoint for chaos testing — store.put.fsync, store.put.rename,
// store.put.dirsync, store.load.mmap. Transient failures (kUnavailable)
// are retried in place with capped exponential backoff
// (IndexStoreOptions::retry); only *permanent* validation failures
// quarantine a file — a load that merely ran out of fds must not throw
// good bytes away.

#ifndef JINFER_STORE_INDEX_STORE_H_
#define JINFER_STORE_INDEX_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/signature_index.h"
#include "store/fingerprint.h"
#include "store/mapped_index.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/status.h"

namespace jinfer {
namespace store {

struct IndexStoreStats {
  uint64_t loads = 0;        ///< Load calls.
  uint64_t load_hits = 0;    ///< Loads that returned a mapped index.
  uint64_t load_misses = 0;  ///< Loads with no file for the fingerprint.
  uint64_t writes = 0;       ///< Puts that wrote a file.
  uint64_t skipped_writes = 0;  ///< Puts that found the file already there.
  uint64_t quarantined = 0;  ///< Corrupt files moved to quarantine/.
  uint64_t put_retries = 0;   ///< Publish attempts re-run after a transient
                              ///< fault (real or injected).
  uint64_t load_retries = 0;  ///< Mmap attempts re-run after a transient
                              ///< fault.
};

struct IndexStoreOptions {
  /// Applied around each Put publication and each Load mapping; only
  /// kUnavailable outcomes are retried (see util/retry.h).
  util::RetryPolicy retry;
};

class IndexStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`. Fails with
  /// IoError when the directory cannot be created or is not writable.
  static util::Result<IndexStore> Open(std::string dir,
                                       IndexStoreOptions options = {});

  IndexStore(IndexStore&&) = default;
  IndexStore& operator=(IndexStore&&) = default;

  const std::string& dir() const { return dir_; }

  /// Path the given fingerprint serializes to (whether or not it exists).
  std::string PathFor(const InstanceFingerprint& fingerprint) const;

  /// True iff a file for the fingerprint currently exists (it may still
  /// fail validation at Load time).
  bool Contains(const InstanceFingerprint& fingerprint) const;

  /// Maps and validates the index for `fingerprint`. NotFound when absent;
  /// ParseError (after quarantining the file) when present but invalid —
  /// including a file whose header fingerprint disagrees with its name.
  util::Result<std::shared_ptr<const core::SignatureIndex>> Load(
      const InstanceFingerprint& fingerprint) const;

  /// Persists `index` under `fingerprint` (write-temp, fsync, rename,
  /// fsync the directory). A no-op when a *valid* file already exists:
  /// files are content-addressed, so it already holds these bytes. An
  /// existing file that fails validation is quarantined and replaced —
  /// Put is the self-heal path after corruption.
  util::Status Put(const core::SignatureIndex& index,
                   const InstanceFingerprint& fingerprint) const;

  IndexStoreStats stats() const;

 private:
  IndexStore(std::string dir, IndexStoreOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// One write-temp → fsync → rename → dirsync publication attempt; the
  /// unit Put retries on transient failure (always onto a fresh temp name,
  /// so a half-failed attempt never taints the next).
  util::Status PublishOnce(const std::vector<uint8_t>& bytes,
                           const std::string& path) const;

  /// Moves `path` into quarantine/ (best-effort; the load error is
  /// reported either way).
  void Quarantine(const std::string& path) const;

  std::string dir_;
  IndexStoreOptions options_;
  // shared_ptr so IndexStore stays movable while stats live behind a
  // stable address for const methods on concurrent threads.
  std::shared_ptr<std::mutex> mu_ = std::make_shared<std::mutex>();
  std::shared_ptr<IndexStoreStats> stats_ = std::make_shared<IndexStoreStats>();
};

}  // namespace store
}  // namespace jinfer

#endif  // JINFER_STORE_INDEX_STORE_H_
