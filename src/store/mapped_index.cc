#include "store/mapped_index.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "relational/schema.h"
#include "store/index_file.h"
#include "util/string_util.h"

namespace jinfer {
namespace store {

util::Result<MappedFile> MappedFile::Open(const std::string& path) {
  // Errno classification matters here: an exhausted fd table (EMFILE) is a
  // transient kUnavailable the store retries, while a permanent open error
  // stays kIoError. Misclassifying transient as permanent would quarantine
  // healthy files under load (see index_store.h).
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::IoStatusFromErrno(errno, util::StrFormat(
        "open(%s): %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    util::Status status = util::IoStatusFromErrno(errno, util::StrFormat(
        "fstat(%s): %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return util::Status::ParseError(
        util::StrFormat("index file %s is empty", path.c_str()));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // MAP_PRIVATE read-only: the mapping is never written, and a concurrent
  // truncation of the underlying file can at worst SIGBUS — which the
  // store's write-temp-then-rename discipline rules out (files are
  // immutable once visible under their content-addressed name).
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping holds its own reference.
  if (data == MAP_FAILED) {
    return util::IoStatusFromErrno(errno, util::StrFormat(
        "mmap(%s, %zu bytes): %s", path.c_str(), size,
        std::strerror(errno)));
  }
  return MappedFile(data, size);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

util::Result<MappedIndex> LoadMappedIndex(const std::string& path) {
  JINFER_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  auto mapping = std::make_shared<MappedFile>(std::move(file));

  JINFER_ASSIGN_OR_RETURN(IndexFileView view,
                          ValidateIndexFile(mapping->bytes()));

  JINFER_ASSIGN_OR_RETURN(
      rel::Schema r_schema,
      rel::Schema::Make(view.r_relation, view.r_attrs));
  JINFER_ASSIGN_OR_RETURN(
      rel::Schema p_schema,
      rel::Schema::Make(view.p_relation, view.p_attrs));
  JINFER_ASSIGN_OR_RETURN(core::Omega omega,
                          core::Omega::Make(r_schema, p_schema));

  JINFER_ASSIGN_OR_RETURN(
      core::SignatureIndex index,
      core::SignatureIndex::FromSections(
          std::move(omega), view.header->num_tuples, view.compressed,
          view.classes, view.r_codes, view.p_codes, mapping));

  MappedIndex out;
  out.index = std::make_shared<const core::SignatureIndex>(std::move(index));
  out.fingerprint = view.fingerprint;
  out.compressed = view.compressed;
  out.file_bytes = mapping->bytes().size();
  return out;
}

}  // namespace store
}  // namespace jinfer
