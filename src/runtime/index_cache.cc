#include "runtime/index_cache.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/string_util.h"

namespace jinfer {
namespace runtime {

namespace {

/// Registry handles for the cache's counters. Dual-write discipline
/// (DESIGN.md §13.1): the per-instance IndexCacheStats under mu_ stays
/// the source of truth for stats() — every site that bumps a struct field
/// also bumps the matching global counter, so registry deltas track
/// struct deltas exactly (asserted in tests/chaos/).
struct CacheMetrics {
  obs::Counter& lookups;
  obs::Counter& hits;
  obs::Counter& builds;
  obs::Counter& failures;
  obs::Counter& mapped_loads;
  obs::Counter& store_writes;
  obs::Counter& evictions;
  obs::Counter& rejected_admissions;
  obs::Counter& degraded_builds;
  obs::Counter& fail_fast;
  obs::Counter& backoff_arms;
  obs::Histogram& probe_nanos;
  obs::Histogram& build_nanos;

  static CacheMetrics& Get() {
    static CacheMetrics* m = new CacheMetrics{
        obs::Registry::Global().counter(obs::kCacheLookupsTotal),
        obs::Registry::Global().counter(obs::kCacheHitsTotal),
        obs::Registry::Global().counter(obs::kCacheBuildsTotal),
        obs::Registry::Global().counter(obs::kCacheFailuresTotal),
        obs::Registry::Global().counter(obs::kCacheMappedLoadsTotal),
        obs::Registry::Global().counter(obs::kCacheStoreWritesTotal),
        obs::Registry::Global().counter(obs::kCacheEvictionsTotal),
        obs::Registry::Global().counter(obs::kCacheRejectedAdmissionsTotal),
        obs::Registry::Global().counter(obs::kCacheDegradedBuildsTotal),
        obs::Registry::Global().counter(obs::kCacheFailFastTotal),
        obs::Registry::Global().counter(obs::kCacheBackoffArmsTotal),
        obs::Registry::Global().histogram(obs::kCacheProbeNanos),
        obs::Registry::Global().histogram(obs::kCacheBuildNanos),
    };
    return *m;
  }
};

}  // namespace

const char* IndexTierName(IndexTier tier) {
  switch (tier) {
    case IndexTier::kMemory: return "memory";
    case IndexTier::kMapped: return "mapped";
    case IndexTier::kBuilt: return "built";
  }
  return "unknown";
}

util::Result<std::shared_ptr<const core::SignatureIndex>>
IndexCache::GetOrBuild(const rel::Relation& r, const rel::Relation& p) {
  JINFER_ASSIGN_OR_RETURN(TieredIndex tiered, GetOrBuildTiered(r, p));
  return std::move(tiered.index);
}

util::Result<TieredIndex> IndexCache::GetOrBuildTiered(
    const rel::Relation& r, const rel::Relation& p) {
  CacheMetrics& metrics = CacheMetrics::Get();
  obs::ScopedSpan probe_span(obs::SpanKind::kCacheProbe, /*trace_id=*/0,
                             &metrics.probe_nanos);
  const InstanceFingerprint key =
      FingerprintInstance(r, p, options_.build.compress);

  // Engaged only on a miss: the promise's shared state is a heap
  // allocation the hit path (the per-session steady state) never needs.
  std::optional<std::promise<BuildOutcome>> promise;
  uint64_t my_id;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.lookups;
    metrics.lookups.Inc();
    // Every lookup feeds the admission sketch, hits included: residency
    // decisions compare true access frequencies, not miss frequencies.
    sketch_.Increment(SketchKey(key));
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      metrics.hits.Inc();
      std::shared_future<BuildOutcome> future = it->second.future;
      lock.unlock();
      // Blocks iff the resolution is still in flight.
      JINFER_ASSIGN_OR_RETURN(auto index, future.get());
      return TieredIndex{std::move(index), IndexTier::kMemory};
    }
    // Inside a failure-backoff window the herd fails fast; exactly the
    // first lookup past the window (or a waiter joining an in-flight
    // resolution above) runs a real retry.
    auto failed = failures_.find(key);
    if (failed != failures_.end() &&
        clock().NowNanos() < failed->second.retry_after_nanos) {
      ++stats_.fail_fast;
      metrics.fail_fast.Inc();
      return util::Status::Unavailable(util::StrFormat(
          "index resolution for fingerprint %s backing off after %u "
          "transient failure(s)",
          key.ToHex().c_str(), failed->second.consecutive));
    }
    my_id = ++next_id_;
    promise.emplace();
    entries_.emplace(key, Entry{promise->get_future().share(), my_id, false});
  }

  // Single-flight winner: resolve outside the lock so concurrent requests
  // for other fingerprints (and waiters on this one) are never serialized
  // on mu_. Store first — an mmap load is ~constant-time against a build.
  IndexTier tier = IndexTier::kBuilt;
  BuildOutcome outcome = util::Status::NotFound("unresolved");
  bool store_hit = false;
  bool degraded = false;
  if (options_.store != nullptr) {
    auto loaded = options_.store->Load(key);
    if (loaded.ok()) {
      outcome = std::move(loaded);
      tier = IndexTier::kMapped;
      store_hit = true;
    } else if (util::IsTransient(loaded.status())) {
      // The store retried and still couldn't map (fd/memory pressure, an
      // injected fault) — the bytes are presumed fine, the tier is just
      // unavailable. Serve the lookup anyway with a fresh build.
      degraded = true;
    }
    // NotFound and quarantined-corruption both fall through to a build;
    // the rebuilt index is persisted below, repopulating the slot.
  }
  bool persisted = false;
  if (!store_hit) {
    util::Result<core::SignatureIndex> built =
        [&]() -> util::Result<core::SignatureIndex> {
      obs::ScopedSpan build_span(obs::SpanKind::kIndexBuild, /*trace_id=*/0,
                                 &metrics.build_nanos);
      util::Status injected = util::FailpointHit("cache.build");
      if (!injected.ok()) return injected;
      return core::SignatureIndex::Build(r, p, options_.build);
    }();
    if (built.ok()) {
      auto shared = std::make_shared<const core::SignatureIndex>(
          std::move(built).ValueOrDie());
      if (options_.store != nullptr) {
        persisted = options_.store->Put(*shared, key).ok();
      }
      outcome = BuildOutcome(std::move(shared));
    } else {
      outcome = BuildOutcome(built.status());
    }
  }

  if (!outcome.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A failed outcome is always a failed build: a store-load failure
      // falls through to the build path above rather than surfacing.
      ++stats_.builds;
      ++stats_.failures;
      metrics.builds.Inc();
      metrics.failures.Inc();
      if (options_.failure_backoff_base.count() > 0 &&
          util::IsTransient(outcome.status())) {
        FailureState& state = failures_[key];
        ++state.consecutive;
        const uint32_t shift =
            std::min<uint32_t>(state.consecutive - 1, 16);  // Cap wins anyway.
        auto window = options_.failure_backoff_base * (1LL << shift);
        if (window > options_.failure_backoff_max) {
          window = options_.failure_backoff_max;
        }
        state.retry_after_nanos =
            clock().NowNanos() +
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(window)
                    .count());
        ++stats_.backoff_arms;
        metrics.backoff_arms.Inc();
      }
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.id == my_id) entries_.erase(it);
    }
    // Deliver after the eviction: a caller that misses the erased entry
    // starts a fresh resolution instead of waiting on this failed one.
    promise->set_value(outcome);
    return outcome.status();
  }

  // Deliver before admission: waiters get their index immediately; whether
  // the entry stays resident is a separate (capacity) question.
  promise->set_value(outcome);
  {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.erase(key);  // Success closes any backoff window.
    if (store_hit) {
      ++stats_.mapped_loads;
      metrics.mapped_loads.Inc();
    } else {
      ++stats_.builds;
      metrics.builds.Inc();
      if (degraded) {
        ++stats_.degraded_builds;
        metrics.degraded_builds.Inc();
      }
      if (persisted) {
        ++stats_.store_writes;
        metrics.store_writes.Inc();
      }
    }
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.id == my_id) {
      it->second.ready = true;
      if (options_.capacity > 0) EnforceCapacityLocked(key, my_id);
    }
  }
  return TieredIndex{std::move(outcome).ValueOrDie(), tier};
}

void IndexCache::EnforceCapacityLocked(const InstanceFingerprint& key,
                                       uint64_t id) {
  size_t ready_count = 0;
  for (const auto& [k, e] : entries_) {
    if (e.ready) ++ready_count;
  }
  if (ready_count <= options_.capacity) return;

  // TinyLFU admission: the newcomer displaces the coldest resident only if
  // the sketch says it is accessed strictly more often; otherwise the
  // newcomer itself is dropped (its callers keep their shared_ptrs, and
  // with a store attached the next access is an mmap, not a rebuild).
  // Ties and victim selection break deterministically on (estimate, id) —
  // oldest entry first — so tests can pin the behavior.
  const uint32_t newcomer_freq = sketch_.Estimate(SketchKey(key));
  auto victim = entries_.end();
  uint32_t victim_freq = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!it->second.ready || it->second.id == id) continue;
    const uint32_t freq = sketch_.Estimate(SketchKey(it->first));
    if (victim == entries_.end() || freq < victim_freq ||
        (freq == victim_freq && it->second.id < victim->second.id)) {
      victim = it;
      victim_freq = freq;
    }
  }
  if (victim != entries_.end() && newcomer_freq > victim_freq) {
    entries_.erase(victim);
    ++stats_.evictions;
    CacheMetrics::Get().evictions.Inc();
  } else {
    auto self = entries_.find(key);
    if (self != entries_.end() && self->second.id == id) {
      entries_.erase(self);
      ++stats_.rejected_admissions;
      CacheMetrics::Get().rejected_admissions.Inc();
    }
  }
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

IndexCacheStats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace runtime
}  // namespace jinfer
