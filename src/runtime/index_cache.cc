#include "runtime/index_cache.h"

#include <cstring>
#include <optional>
#include <string>

#include "util/bitset.h"

namespace jinfer {
namespace runtime {

namespace {

/// Two independently-mixed 64-bit lanes absorbed in lockstep. Each lane is
/// a chained util::Mix64 with a lane-distinct tweak, so the pair behaves as
/// one 128-bit digest: collapsing it would bring the collision probability
/// for distinct instances into birthday range for large catalogs.
class Hasher128 {
 public:
  void Absorb(uint64_t x) {
    hi_ = util::Mix64(hi_ + x);
    lo_ = util::Mix64(lo_ ^ (x * 0xc2b2ae3d27d4eb4fULL));
  }

  void AbsorbBytes(const void* data, size_t len) {
    Absorb(len);
    const unsigned char* p = static_cast<const unsigned char*>(data);
    while (len >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      Absorb(word);
      p += 8;
      len -= 8;
    }
    if (len > 0) {
      uint64_t word = 0;
      std::memcpy(&word, p, len);
      Absorb(word);
    }
  }

  void AbsorbString(const std::string& s) { AbsorbBytes(s.data(), s.size()); }

  /// Domain-separated type tags keep e.g. the int 1 and the string "\x01"
  /// from colliding.
  void AbsorbValue(const rel::Value& v) {
    if (v.is_null()) {
      Absorb(0x4e);  // 'N'
    } else if (v.is_int()) {
      Absorb(0x49);  // 'I'
      Absorb(static_cast<uint64_t>(v.AsInt()));
    } else if (v.is_double()) {
      Absorb(0x44);  // 'D'
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      Absorb(bits);
    } else {
      Absorb(0x53);  // 'S'
      AbsorbString(v.AsString());
    }
  }

  void AbsorbRelation(const rel::Relation& rel) {
    AbsorbString(rel.schema().relation_name());
    Absorb(rel.num_attributes());
    for (const std::string& attr : rel.schema().attribute_names()) {
      AbsorbString(attr);
    }
    Absorb(rel.num_rows());
    for (const rel::Row& row : rel.rows()) {
      for (const rel::Value& cell : row) AbsorbValue(cell);
    }
  }

  InstanceFingerprint Finish() const { return {hi_, lo_}; }

 private:
  uint64_t hi_ = 0x243f6a8885a308d3ULL;  // pi digits — nothing-up-my-sleeve.
  uint64_t lo_ = 0x13198a2e03707344ULL;
};

}  // namespace

InstanceFingerprint FingerprintInstance(const rel::Relation& r,
                                        const rel::Relation& p,
                                        bool compress) {
  Hasher128 h;
  h.AbsorbRelation(r);
  h.AbsorbRelation(p);
  h.Absorb(compress ? 1 : 0);
  return h.Finish();
}

util::Result<std::shared_ptr<const core::SignatureIndex>>
IndexCache::GetOrBuild(const rel::Relation& r, const rel::Relation& p) {
  const InstanceFingerprint key = FingerprintInstance(r, p, options_.compress);

  // Engaged only on a miss: the promise's shared state is a heap
  // allocation the hit path (the per-session steady state) never needs.
  std::optional<std::promise<BuildOutcome>> promise;
  uint64_t my_id;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.lookups;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      std::shared_future<BuildOutcome> future = it->second.future;
      lock.unlock();
      return future.get();  // Blocks iff the build is still in flight.
    }
    my_id = ++next_id_;
    promise.emplace();
    entries_.emplace(key, Entry{promise->get_future().share(), my_id});
    ++stats_.builds;
  }

  // Single-flight winner: build outside the lock so concurrent requests for
  // other fingerprints (and waiters on this one) are never serialized on mu_.
  util::Result<core::SignatureIndex> built =
      core::SignatureIndex::Build(r, p, options_);
  BuildOutcome outcome =
      built.ok() ? BuildOutcome(std::make_shared<const core::SignatureIndex>(
                       std::move(built).ValueOrDie()))
                 : BuildOutcome(built.status());

  if (!outcome.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.id == my_id) entries_.erase(it);
  }
  // Deliver after the eviction: a caller that misses the erased entry
  // starts a fresh build instead of waiting on this failed one.
  promise->set_value(outcome);
  return outcome;
}

size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

IndexCacheStats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace runtime
}  // namespace jinfer
