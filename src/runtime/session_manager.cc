#include "runtime/session_manager.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/parallel.h"

namespace jinfer {
namespace runtime {

namespace {

/// Shared scheduler state: a ready queue of job indices plus the count of
/// jobs not yet finished. A job index is in exactly one place at a time —
/// the queue, a worker's hands, or retired — so no per-job locking is
/// needed; the queue mutex is the only synchronization point.
struct Scheduler {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<size_t> ready;
  size_t remaining = 0;

  /// Blocks until a job is ready or everything finished; nullopt = done.
  std::optional<size_t> Claim() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !ready.empty() || remaining == 0; });
    if (ready.empty()) return std::nullopt;
    size_t index = ready.front();
    ready.pop_front();
    return index;
  }

  void Requeue(size_t index) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready.push_back(index);
    }
    cv.notify_one();
  }

  void Retire() {
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(mu);
      JINFER_CHECK(remaining > 0, "retired more jobs than exist");
      all_done = --remaining == 0;
    }
    // Waking everyone on the last retirement releases workers parked in
    // Claim; intermediate retirements wake nobody (no new work appeared).
    if (all_done) cv.notify_all();
  }
};

}  // namespace

std::vector<util::Result<core::InferenceResult>> SessionManager::RunAll(
    std::vector<SessionJob> jobs) {
  const size_t n = jobs.size();
  if (n == 0) return {};

  // Slot i holds job i's session once created and its result once retired.
  std::vector<std::optional<Session>> sessions(n);
  std::vector<std::optional<util::Result<core::InferenceResult>>> slots(n);

  Scheduler scheduler;
  scheduler.remaining = n;
  for (size_t i = 0; i < n; ++i) scheduler.ready.push_back(i);

  const size_t steps_per_slice = options_.steps_per_slice;
  auto worker = [&] {
    while (std::optional<size_t> claimed = scheduler.Claim()) {
      const size_t i = *claimed;
      SessionJob& job = jobs[i];

      if (!sessions[i]) {
        JINFER_CHECK(job.make != nullptr, "job %zu has no session factory",
                     i);
        JINFER_CHECK(job.oracle != nullptr, "job %zu has no oracle", i);
        util::Result<Session> made = job.make();
        if (!made.ok()) {
          slots[i] = made.status();
          scheduler.Retire();
          continue;
        }
        sessions[i].emplace(std::move(made).ValueOrDie());
      }

      Session& session = *sessions[i];
      util::Status error = util::Status::OK();
      bool finished = false;
      for (size_t step = 0; steps_per_slice == 0 || step < steps_per_slice;
           ++step) {
        std::optional<core::ClassId> question = session.NextQuestion();
        if (!question) {
          finished = true;
          break;
        }
        error = session.Answer(
            job.oracle->LabelClass(session.index(), *question));
        if (!error.ok()) {
          finished = true;  // An inconsistent oracle ends the session.
          break;
        }
      }

      if (finished) {
        slots[i] = error.ok()
                       ? util::Result<core::InferenceResult>(session.Result())
                       : util::Result<core::InferenceResult>(error);
        sessions[i].reset();
        scheduler.Retire();
      } else {
        scheduler.Requeue(i);
      }
    }
  };

  const size_t workers =
      std::min(util::ResolveThreadCount(options_.threads), n);
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // Worker 0 runs inline, matching util::ParallelFor's model.
  for (std::thread& t : pool) t.join();

  std::vector<util::Result<core::InferenceResult>> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    JINFER_CHECK(slots[i].has_value(), "job %zu never finished", i);
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

}  // namespace runtime
}  // namespace jinfer
