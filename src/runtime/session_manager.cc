#include "runtime/session_manager.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace jinfer {
namespace runtime {

namespace {

/// Registry handles for the manager's counters, dual-written beside the
/// per-instance Stats struct (DESIGN.md §13.1). The struct under stats_mu_
/// stays the source of truth for stats(); the registry mirrors its deltas
/// exactly (asserted in tests/chaos/metrics_chaos_test.cc).
struct ManagerMetrics {
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& shed;
  obs::Counter& deadline_exceeded;
  obs::Counter& factory_retries;
  obs::Counter& slice_faults;
  obs::Counter& hosted_opened;
  obs::Counter& hosted_closed;
  obs::Counter& hosted_aborted;
  obs::Counter& hosted_reaped;
  obs::Counter& hosted_shed;

  static ManagerMetrics& Get() {
    static ManagerMetrics* m = new ManagerMetrics{
        obs::Registry::Global().counter(obs::kManagerCompletedTotal),
        obs::Registry::Global().counter(obs::kManagerFailedTotal),
        obs::Registry::Global().counter(obs::kManagerShedTotal),
        obs::Registry::Global().counter(obs::kManagerDeadlineExceededTotal),
        obs::Registry::Global().counter(obs::kManagerFactoryRetriesTotal),
        obs::Registry::Global().counter(obs::kManagerSliceFaultsTotal),
        obs::Registry::Global().counter(obs::kManagerHostedOpenedTotal),
        obs::Registry::Global().counter(obs::kManagerHostedClosedTotal),
        obs::Registry::Global().counter(obs::kManagerHostedAbortedTotal),
        obs::Registry::Global().counter(obs::kManagerHostedReapedTotal),
        obs::Registry::Global().counter(obs::kManagerHostedShedTotal),
    };
    return *m;
  }
};

/// Shared scheduler state: a ready queue of job indices plus the count of
/// jobs not yet finished. A job index is in exactly one place at a time —
/// the queue, a worker's hands, or retired — so no per-job locking is
/// needed; the queue mutex is the only synchronization point. The bound in
/// Options::max_queue is enforced at admission (RunAll entry), never here:
/// a requeue of a claimed job always succeeds, so bounded queues cannot
/// deadlock the pool.
struct Scheduler {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<size_t> ready;
  size_t remaining = 0;

  /// Blocks until a job is ready or everything finished; nullopt = done.
  std::optional<size_t> Claim() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !ready.empty() || remaining == 0; });
    if (ready.empty()) return std::nullopt;
    size_t index = ready.front();
    ready.pop_front();
    return index;
  }

  void Requeue(size_t index) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready.push_back(index);
    }
    cv.notify_one();
  }

  void Retire() {
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(mu);
      JINFER_CHECK(remaining > 0, "retired more jobs than exist");
      all_done = --remaining == 0;
    }
    // Waking everyone on the last retirement releases workers parked in
    // Claim; intermediate retirements wake nobody (no new work appeared).
    if (all_done) cv.notify_all();
  }
};

}  // namespace

std::vector<util::Result<core::InferenceResult>> SessionManager::RunAll(
    std::vector<SessionJob> jobs) {
  const size_t n = jobs.size();
  if (n == 0) return {};

  const util::Deadline run_deadline = util::Deadline::After(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.run_deadline));

  // Slot i holds job i's session once created and its result once retired.
  std::vector<std::optional<Session>> sessions(n);
  std::vector<std::optional<util::Result<core::InferenceResult>>> slots(n);
  // Per-job deadline (set at first claim) and factory-retry backoff state.
  std::vector<util::Deadline> job_deadlines(n, util::Deadline::Infinite());
  // char, not bool: vector<bool> packs bits, and per-job flags owned by
  // different workers must not share a byte (TSan-clean by construction).
  std::vector<char> started(n, 0);
  std::vector<std::optional<util::Backoff>> factory_backoff(n);

  // Admission control: a batch larger than the bound sheds the excess
  // immediately — an explicit kResourceExhausted beats an unbounded queue
  // silently absorbing load the pool cannot keep up with. Shedding is
  // deterministic (the tail of the batch) so callers can rely on which
  // jobs ran.
  size_t admitted = n;
  if (options_.max_queue > 0 && n > options_.max_queue) {
    admitted = options_.max_queue;
    for (size_t i = admitted; i < n; ++i) {
      slots[i] = util::Result<core::InferenceResult>(
          util::Status::ResourceExhausted(util::StrFormat(
              "job %zu shed: ready queue bounded at %zu, %zu submitted",
              i, options_.max_queue, n)));
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.shed += n - admitted;
    stats_.failed += n - admitted;
    ManagerMetrics::Get().shed.Inc(n - admitted);
    ManagerMetrics::Get().failed.Inc(n - admitted);
  }

  Scheduler scheduler;
  scheduler.remaining = admitted;
  for (size_t i = 0; i < admitted; ++i) scheduler.ready.push_back(i);

  const size_t steps_per_slice = options_.steps_per_slice;
  auto worker = [&] {
    while (std::optional<size_t> claimed = scheduler.Claim()) {
      const size_t i = *claimed;
      SessionJob& job = jobs[i];

      if (!started[i]) {
        started[i] = 1;
        job_deadlines[i] = util::Deadline::After(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                options_.job_deadline));
      }

      // Cooperative cancellation at the slice boundary: the check runs
      // before any step, so a cancelled job loses whole slices, never a
      // half-applied interaction — surviving transcripts stay exact.
      if (run_deadline.expired() || job_deadlines[i].expired()) {
        slots[i] = util::Result<core::InferenceResult>(
            util::Status::DeadlineExceeded(util::StrFormat(
                "job %zu cancelled at slice boundary: %s deadline expired",
                i, run_deadline.expired() ? "run" : "job")));
        sessions[i].reset();
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.deadline_exceeded;
          ++stats_.failed;
          ManagerMetrics::Get().deadline_exceeded.Inc();
          ManagerMetrics::Get().failed.Inc();
        }
        // The dump names the span that ate the budget — the diagnosis a
        // deadline page needs first (DESIGN.md §13.2).
        obs::EmitFlightDump(util::StrFormat(
            "job %zu cancelled: %s deadline expired", i,
            run_deadline.expired() ? "run" : "job"));
        scheduler.Retire();
        continue;
      }

      // Injected scheduling fault: the slice never starts, the job goes
      // back in the queue untouched. Chaos schedules on manager.step thus
      // perturb only the interleaving — exactly what the determinism
      // contract says cannot change transcripts.
      if (!util::FailpointHit("manager.step").ok()) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.slice_faults;
          ManagerMetrics::Get().slice_faults.Inc();
        }
        scheduler.Requeue(i);
        continue;
      }

      if (!sessions[i]) {
        JINFER_CHECK(job.make != nullptr, "job %zu has no session factory",
                     i);
        JINFER_CHECK(job.oracle != nullptr, "job %zu has no oracle", i);
        util::Result<Session> made = job.make();
        if (!made.ok()) {
          const bool transient = util::IsTransient(made.status());
          if (!factory_backoff[i]) {
            factory_backoff[i].emplace(options_.factory_retry);
          }
          const bool attempts_left =
              options_.factory_retry.max_attempts <= 0 ||
              factory_backoff[i]->attempt() + 1 <
                  options_.factory_retry.max_attempts;
          if (transient && attempts_left) {
            // Back off on this worker (bounded by the policy cap), then
            // requeue: the job deadline, checked above, bounds unlimited
            // policies.
            std::this_thread::sleep_for(factory_backoff[i]->Next());
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              ++stats_.factory_retries;
              ManagerMetrics::Get().factory_retries.Inc();
            }
            scheduler.Requeue(i);
            continue;
          }
          slots[i] = made.status();
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.failed;
            ManagerMetrics::Get().failed.Inc();
          }
          scheduler.Retire();
          continue;
        }
        sessions[i].emplace(std::move(made).ValueOrDie());
      }

      Session& session = *sessions[i];
      util::Status error = util::Status::OK();
      bool finished = false;
      for (size_t step = 0; steps_per_slice == 0 || step < steps_per_slice;
           ++step) {
        std::optional<core::ClassId> question = session.NextQuestion();
        if (!question) {
          finished = true;
          break;
        }
        error = session.Answer(
            job.oracle->LabelClass(session.index(), *question));
        if (!error.ok()) {
          finished = true;  // An inconsistent oracle ends the session.
          break;
        }
      }

      if (finished) {
        slots[i] = error.ok()
                       ? util::Result<core::InferenceResult>(session.Result())
                       : util::Result<core::InferenceResult>(error);
        sessions[i].reset();
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          if (error.ok()) {
            ++stats_.completed;
            ManagerMetrics::Get().completed.Inc();
          } else {
            ++stats_.failed;
            ManagerMetrics::Get().failed.Inc();
          }
        }
        scheduler.Retire();
      } else {
        scheduler.Requeue(i);
      }
    }
  };

  const size_t workers =
      std::min(util::ResolveThreadCount(options_.threads),
               std::max<size_t>(admitted, 1));
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // Worker 0 runs inline, matching util::ParallelFor's model.
  for (std::thread& t : pool) t.join();

  std::vector<util::Result<core::InferenceResult>> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    JINFER_CHECK(slots[i].has_value(), "job %zu never finished", i);
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

util::Result<uint64_t> SessionManager::OpenHosted(
    const std::function<util::Result<Session>()>& make) {
  JINFER_CHECK(make != nullptr, "OpenHosted needs a session factory");
  {
    std::lock_guard<std::mutex> lock(hosted_mu_);
    if (options_.max_sessions > 0 &&
        hosted_.size() + hosted_opening_ >= options_.max_sessions) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.hosted_shed;
      ManagerMetrics::Get().hosted_shed.Inc();
      return util::Status::ResourceExhausted(util::StrFormat(
          "session shed: %zu hosted sessions open, bounded at %zu",
          hosted_.size() + hosted_opening_, options_.max_sessions));
    }
    ++hosted_opening_;  // Reserve the slot while the factory runs unlocked.
  }

  util::Result<Session> made = make();

  std::lock_guard<std::mutex> lock(hosted_mu_);
  --hosted_opening_;
  if (!made.ok()) return made.status();
  const uint64_t id = next_hosted_id_++;
  auto [it, inserted] =
      hosted_.try_emplace(id, std::move(made).ValueOrDie());
  JINFER_CHECK(inserted, "hosted id %llu reused",
               static_cast<unsigned long long>(id));
  it->second.last_touch_nanos = clock().NowNanos();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.hosted_opened;
    ManagerMetrics::Get().hosted_opened.Inc();
  }
  return id;
}

util::Result<Session*> SessionManager::AcquireHosted(uint64_t id) {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  auto it = hosted_.find(id);
  if (it == hosted_.end()) {
    return util::Status::NotFound(util::StrFormat(
        "no hosted session %llu", static_cast<unsigned long long>(id)));
  }
  if (it->second.busy) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "hosted session %llu already leased",
        static_cast<unsigned long long>(id)));
  }
  it->second.busy = true;
  return &it->second.session;
}

void SessionManager::ReleaseHosted(uint64_t id) {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  auto it = hosted_.find(id);
  if (it == hosted_.end()) return;
  JINFER_CHECK(it->second.busy, "release of an unleased hosted session");
  it->second.busy = false;
  it->second.last_touch_nanos = clock().NowNanos();
  if (it->second.aborted) {
    hosted_.erase(it);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.hosted_aborted;
    ManagerMetrics::Get().hosted_aborted.Inc();
  }
}

util::Result<core::InferenceResult> SessionManager::CloseHosted(uint64_t id) {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  auto it = hosted_.find(id);
  if (it == hosted_.end()) {
    return util::Status::NotFound(util::StrFormat(
        "no hosted session %llu", static_cast<unsigned long long>(id)));
  }
  if (it->second.busy) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "hosted session %llu is leased", static_cast<unsigned long long>(id)));
  }
  core::InferenceResult result = it->second.session.Result();
  hosted_.erase(it);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.hosted_closed;
    ManagerMetrics::Get().hosted_closed.Inc();
  }
  return result;
}

util::Status SessionManager::AbortHosted(uint64_t id) {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  auto it = hosted_.find(id);
  if (it == hosted_.end()) {
    return util::Status::NotFound(util::StrFormat(
        "no hosted session %llu", static_cast<unsigned long long>(id)));
  }
  if (it->second.busy) {
    // A worker holds the lease: mark and let ReleaseHosted finish the job.
    it->second.aborted = true;
    return util::Status::OK();
  }
  hosted_.erase(it);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.hosted_aborted;
    ManagerMetrics::Get().hosted_aborted.Inc();
  }
  return util::Status::OK();
}

size_t SessionManager::ReapIdleHosted(std::chrono::nanoseconds max_idle) {
  const uint64_t now = clock().NowNanos();
  const uint64_t idle_nanos =
      max_idle.count() < 0 ? 0 : static_cast<uint64_t>(max_idle.count());
  size_t reaped = 0;
  std::lock_guard<std::mutex> lock(hosted_mu_);
  for (auto it = hosted_.begin(); it != hosted_.end();) {
    if (!it->second.busy &&
        now - it->second.last_touch_nanos > idle_nanos) {
      it = hosted_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  if (reaped > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.hosted_reaped += reaped;
    ManagerMetrics::Get().hosted_reaped.Inc(reaped);
  }
  return reaped;
}

size_t SessionManager::hosted_open() const {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  return hosted_.size();
}

SessionManager::Stats SessionManager::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.degraded_serves = cache_.stats().degraded_builds;
  return out;
}

}  // namespace runtime
}  // namespace jinfer
