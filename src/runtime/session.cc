#include "runtime/session.h"

#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace jinfer {
namespace runtime {

namespace {

/// Validated before the member initializers dereference it — a null handle
/// must abort with this message, not segfault constructing the state.
const core::SignatureIndex* CheckedIndex(const core::SignatureIndex* index) {
  JINFER_CHECK(index != nullptr, "Session without an index");
  return index;
}

/// Per-interaction latency histograms. The Stopwatch the session already
/// runs for its `seconds` accounting provides both the duration and the
/// span's start timestamp — instrumenting an interaction costs no extra
/// clock read (the <2% BM_ThroughputSessions budget, DESIGN.md §13).
struct SessionMetrics {
  obs::Histogram& question_nanos;
  obs::Histogram& answer_nanos;

  static SessionMetrics& Get() {
    static SessionMetrics* m = new SessionMetrics{
        obs::Registry::Global().histogram(obs::kSessionQuestionNanos),
        obs::Registry::Global().histogram(obs::kSessionAnswerNanos),
    };
    return *m;
  }
};

/// Interaction halves below this duration feed their histogram but skip
/// the flight ring. The ring is forensics for "why was this slow" — a
/// micro-instance session runs hundreds of thousands of sub-microsecond
/// interactions per second, and recording them all both costs a
/// contended ring write per half (several percent of
/// BM_ThroughputSessions) and wraps the slow spans a dump actually wants
/// out of the ring within milliseconds. Anything long enough to explain
/// a stall clears 4 us easily; the histograms stay exact either way.
constexpr uint64_t kInteractionRingFloorNanos = 4096;

/// Samples batched in a thread-local accumulator before paying the
/// shared histogram's atomics (one Merge per this many samples plus one
/// at thread exit). Bounds both the hot-path cost and how stale a
/// mid-run registry scrape can be.
constexpr uint64_t kInteractionFlushEvery = 64;

/// A worker thread's unmerged latency samples for one histogram. Lives
/// in a thread_local rather than in the Session: worker threads persist
/// across many short sessions, so per-session accumulators would spend
/// more on zero-init and move-steals than the batching saves.
struct LocalLatency {
  obs::Histogram& shared;
  obs::LocalHistogram local;
  ~LocalLatency() { shared.Merge(local); }  // Thread-exit tail flush.
};

LocalLatency& QuestionLatency() {
  thread_local LocalLatency latency{SessionMetrics::Get().question_nanos};
  return latency;
}

LocalLatency& AnswerLatency() {
  thread_local LocalLatency latency{SessionMetrics::Get().answer_nanos};
  return latency;
}

/// Merges this thread's pending batches. Called when a session finishes,
/// so a scrape after completed traffic sees exact counts — staleness is
/// limited to sessions still in flight (≤ kInteractionFlushEvery samples
/// per thread per histogram).
void FlushInteractionLatencies() {
#ifndef JINFER_NO_METRICS
  LocalLatency& question = QuestionLatency();
  question.shared.Merge(question.local);
  LocalLatency& answer = AnswerLatency();
  answer.shared.Merge(answer.local);
#endif
}

/// One timed interaction half: thread-local histogram sample (merged
/// into the shared histogram in batches) plus flight-recorder span,
/// built from the measurement the caller already took.
void RecordInteraction(obs::SpanKind kind, LocalLatency& latency,
                       uint64_t trace_id, const util::Stopwatch& watch,
                       uint64_t duration_nanos, uint64_t detail) {
#ifndef JINFER_NO_METRICS
  if (!obs::MetricsEnabled()) return;
  latency.local.Record(duration_nanos);
  if (latency.local.count() >= kInteractionFlushEvery) {
    latency.shared.Merge(latency.local);
  }
  if (duration_nanos < kInteractionRingFloorNanos) return;
  obs::SpanRecord record;
  record.trace_id = trace_id;
  record.start_nanos = watch.StartNanos();
  record.duration_nanos = duration_nanos;
  record.detail = detail;
  record.kind = kind;
  obs::FlightRecorder::Global().Record(record);
#else
  (void)kind;
  (void)latency;
  (void)trace_id;
  (void)watch;
  (void)duration_nanos;
  (void)detail;
#endif
}

}  // namespace

Session::Session(std::shared_ptr<const core::SignatureIndex> index,
                 std::unique_ptr<core::Strategy> strategy,
                 SessionOptions options)
    : keepalive_(std::move(index)),
      index_(CheckedIndex(keepalive_.get())),
      strategy_(std::move(strategy)),
      options_(options),
      state_(*index_) {
  JINFER_CHECK(strategy_ != nullptr, "Session without a strategy");
}

Session::Session(const core::SignatureIndex& index,
                 std::unique_ptr<core::Strategy> strategy,
                 SessionOptions options)
    : index_(&index),
      strategy_(std::move(strategy)),
      options_(options),
      state_(index) {
  JINFER_CHECK(strategy_ != nullptr, "Session without a strategy");
}

std::optional<core::ClassId> Session::NextQuestion() {
  if (finished_) return std::nullopt;
  if (pending_) return pending_;

  util::Stopwatch watch;
  if (options_.max_interactions > 0 &&
      num_interactions_ >= options_.max_interactions) {
    halted_early_ = state_.NumInformativeClasses() > 0;
    finished_ = true;
  } else {
    std::optional<core::ClassId> next = strategy_->SelectNext(state_);
    if (!next) {
      // Halt condition Γ: the strategy may only give up when no informative
      // tuple remains.
      JINFER_CHECK(state_.NumInformativeClasses() == 0,
                   "strategy %s returned no tuple with %zu informative "
                   "classes remaining",
                   strategy_->name(), state_.NumInformativeClasses());
      finished_ = true;
    } else {
      JINFER_CHECK(state_.state(*next) != core::TupleState::kLabeled,
                   "strategy %s re-presented the already-labeled class %u",
                   strategy_->name(), *next);
      pending_ = next;
    }
  }
  const uint64_t duration_nanos = watch.ElapsedNanos();
  seconds_ += static_cast<double>(duration_nanos) * 1e-9;
  RecordInteraction(obs::SpanKind::kQuestionCompute, QuestionLatency(),
                    trace_id_, watch, duration_nanos,
                    pending_ ? static_cast<uint64_t>(*pending_) : 0);
  if (finished_) FlushInteractionLatencies();
  return pending_;
}

util::Status Session::Answer(core::Label label) {
  if (!pending_) {
    return util::Status::FailedPrecondition(
        "Answer with no pending question (call NextQuestion first)");
  }
  util::Stopwatch watch;
  const uint64_t informative_before = state_.InformativeTupleWeight();
  util::Status status = state_.ApplyLabel(*pending_, label);
  const uint64_t duration_nanos = watch.ElapsedNanos();
  seconds_ += static_cast<double>(duration_nanos) * 1e-9;
  RecordInteraction(obs::SpanKind::kAnswerApply, AnswerLatency(), trace_id_,
                    watch, duration_nanos, static_cast<uint64_t>(*pending_));
  if (!status.ok()) return status;  // Question stays pending; state untouched.

  ++num_interactions_;
  if (options_.record_trace) {
    trace_.push_back(
        core::InteractionRecord{*pending_, label, informative_before});
  }
  pending_.reset();
  return util::Status::OK();
}

core::InferenceResult Session::Result() const {
  core::InferenceResult result;
  result.predicate = state_.InferredPredicate();
  result.num_interactions = num_interactions_;
  result.seconds = seconds_;
  result.halted_early = halted_early_;
  result.trace = trace_;
  return result;
}

}  // namespace runtime
}  // namespace jinfer
