#include "runtime/session.h"

#include <utility>

#include "util/stopwatch.h"

namespace jinfer {
namespace runtime {

namespace {

/// Validated before the member initializers dereference it — a null handle
/// must abort with this message, not segfault constructing the state.
const core::SignatureIndex* CheckedIndex(const core::SignatureIndex* index) {
  JINFER_CHECK(index != nullptr, "Session without an index");
  return index;
}

}  // namespace

Session::Session(std::shared_ptr<const core::SignatureIndex> index,
                 std::unique_ptr<core::Strategy> strategy,
                 SessionOptions options)
    : keepalive_(std::move(index)),
      index_(CheckedIndex(keepalive_.get())),
      strategy_(std::move(strategy)),
      options_(options),
      state_(*index_) {
  JINFER_CHECK(strategy_ != nullptr, "Session without a strategy");
}

Session::Session(const core::SignatureIndex& index,
                 std::unique_ptr<core::Strategy> strategy,
                 SessionOptions options)
    : index_(&index),
      strategy_(std::move(strategy)),
      options_(options),
      state_(index) {
  JINFER_CHECK(strategy_ != nullptr, "Session without a strategy");
}

std::optional<core::ClassId> Session::NextQuestion() {
  if (finished_) return std::nullopt;
  if (pending_) return pending_;

  util::Stopwatch watch;
  if (options_.max_interactions > 0 &&
      num_interactions_ >= options_.max_interactions) {
    halted_early_ = state_.NumInformativeClasses() > 0;
    finished_ = true;
  } else {
    std::optional<core::ClassId> next = strategy_->SelectNext(state_);
    if (!next) {
      // Halt condition Γ: the strategy may only give up when no informative
      // tuple remains.
      JINFER_CHECK(state_.NumInformativeClasses() == 0,
                   "strategy %s returned no tuple with %zu informative "
                   "classes remaining",
                   strategy_->name(), state_.NumInformativeClasses());
      finished_ = true;
    } else {
      JINFER_CHECK(state_.state(*next) != core::TupleState::kLabeled,
                   "strategy %s re-presented the already-labeled class %u",
                   strategy_->name(), *next);
      pending_ = next;
    }
  }
  seconds_ += watch.ElapsedSeconds();
  return pending_;
}

util::Status Session::Answer(core::Label label) {
  if (!pending_) {
    return util::Status::FailedPrecondition(
        "Answer with no pending question (call NextQuestion first)");
  }
  util::Stopwatch watch;
  const uint64_t informative_before = state_.InformativeTupleWeight();
  util::Status status = state_.ApplyLabel(*pending_, label);
  seconds_ += watch.ElapsedSeconds();
  if (!status.ok()) return status;  // Question stays pending; state untouched.

  ++num_interactions_;
  if (options_.record_trace) {
    trace_.push_back(
        core::InteractionRecord{*pending_, label, informative_before});
  }
  pending_.reset();
  return util::Status::OK();
}

core::InferenceResult Session::Result() const {
  core::InferenceResult result;
  result.predicate = state_.InferredPredicate();
  result.num_interactions = num_interactions_;
  result.seconds = seconds_;
  result.halted_early = halted_early_;
  result.trace = trace_;
  return result;
}

}  // namespace runtime
}  // namespace jinfer
