// SessionManager: drives many inference sessions to completion over a
// fixed pool of worker threads.
//
// Each job pairs a session factory with the oracle that answers its
// questions. Workers pull jobs from a shared ready queue and advance one
// session by a bounded slice of steps (NextQuestion → oracle → Answer)
// before requeueing it, so N sessions make progress over far fewer threads
// — the multiplexing a runtime needs when sessions outnumber cores. The
// factory runs on the worker, which is where shared-state resolution
// belongs: jobs that fetch their index through a runtime::IndexCache
// exercise its single-flight path under real concurrency.
//
// Determinism contract: sessions share no mutable state (strategy RNGs are
// per-session, oracles are per-job, the index is immutable), so a
// session's transcript and result are a pure function of its job — bit-
// identical whether it runs alone, serially, or among a thousand
// concurrent sessions, for every thread count and slice size. Property-
// tested in tests/runtime/session_manager_test.cc.

#ifndef JINFER_RUNTIME_SESSION_MANAGER_H_
#define JINFER_RUNTIME_SESSION_MANAGER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/inference.h"
#include "core/oracle.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "util/result.h"

namespace jinfer {
namespace runtime {

/// One unit of work: build a session (on the worker), answer its questions
/// with `oracle` until it finishes.
struct SessionJob {
  /// Called once, on the worker that first claims the job. May block (e.g.
  /// on IndexCache::GetOrBuild); an error fails this job only.
  std::function<util::Result<Session>()> make;

  /// Answers the session's questions. Must not be shared with other jobs
  /// unless it is thread-safe and order-insensitive.
  std::unique_ptr<core::Oracle> oracle;
};

class SessionManager {
 public:
  struct Options {
    /// Worker threads: >= 1 exact, 0 = one per hardware thread. Capped at
    /// the job count; 1 runs everything inline on the calling thread.
    int threads = 1;

    /// Interactions a worker performs on a claimed session before
    /// requeueing it (fairness knob); 0 = run a claimed session to
    /// completion (coarsest schedule, fewest queue round-trips).
    size_t steps_per_slice = 8;

    /// Options for the manager-owned IndexCache (see cache()): build
    /// options, the memory-tier capacity bound, and an optional persistent
    /// store tier. The default is the documented bounded capacity
    /// (runtime::kDefaultIndexCacheCapacity); set capacity = 0 to opt back
    /// into PR 3's unbounded never-evicting behavior.
    IndexCacheOptions cache_options;
  };

  SessionManager() : SessionManager(Options{}) {}
  explicit SessionManager(Options options)
      : options_(options), cache_(options.cache_options) {}

  /// Runs every job to completion and returns their results in job order:
  /// the session's final InferenceResult, or the error from its factory /
  /// an inconsistent oracle. Blocks until all jobs finish.
  std::vector<util::Result<core::InferenceResult>> RunAll(
      std::vector<SessionJob> jobs);

  /// The manager-owned index cache. Session factories that capture it
  /// resolve their indexes through one shared, bounded, tiered cache —
  /// the intended wiring for a server bundling worker pool and cache.
  IndexCache& cache() { return cache_; }

 private:
  Options options_;
  IndexCache cache_;
};

}  // namespace runtime
}  // namespace jinfer

#endif  // JINFER_RUNTIME_SESSION_MANAGER_H_
