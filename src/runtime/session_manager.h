// SessionManager: drives many inference sessions to completion over a
// fixed pool of worker threads.
//
// Each job pairs a session factory with the oracle that answers its
// questions. Workers pull jobs from a shared ready queue and advance one
// session by a bounded slice of steps (NextQuestion → oracle → Answer)
// before requeueing it, so N sessions make progress over far fewer threads
// — the multiplexing a runtime needs when sessions outnumber cores. The
// factory runs on the worker, which is where shared-state resolution
// belongs: jobs that fetch their index through a runtime::IndexCache
// exercise its single-flight path under real concurrency.
//
// Determinism contract: sessions share no mutable state (strategy RNGs are
// per-session, oracles are per-job, the index is immutable), so a
// session's transcript and result are a pure function of its job — bit-
// identical whether it runs alone, serially, or among a thousand
// concurrent sessions, for every thread count and slice size. Property-
// tested in tests/runtime/session_manager_test.cc.
//
// Failure domains (DESIGN.md §10): the manager degrades, it never wedges.
//   - Admission control: with max_queue > 0, a RunAll batch larger than the
//     bound sheds the excess jobs immediately with kResourceExhausted —
//     admitted jobs are unaffected, and requeues of claimed jobs never
//     count against the bound (so the bound cannot deadlock the pool).
//   - Deadlines: per-job (measured from the job's first claim, factory
//     included) and whole-run (from RunAll entry), both checked
//     cooperatively at slice boundaries — an expired job is cancelled with
//     kDeadlineExceeded before its next step, never mid-interaction, so a
//     surviving job's transcript is untouched by a neighbor's cancellation.
//   - Transient factory failures (a store/cache hiccup, an injected fault)
//     are retried per factory_retry — the worker backs off and requeues the
//     job rather than failing it; permanent factory errors fail it at once.
//   - The manager.step failpoint fires when a worker claims a slice,
//     *before* any stepping: a tripped slice is a pure requeue, so chaos
//     schedules perturb scheduling order only — transcripts stay
//     bit-identical (tests/chaos/).

#ifndef JINFER_RUNTIME_SESSION_MANAGER_H_
#define JINFER_RUNTIME_SESSION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/inference.h"
#include "core/oracle.h"
#include "runtime/index_cache.h"
#include "runtime/session.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/stopwatch.h"

namespace jinfer {
namespace runtime {

/// One unit of work: build a session (on the worker), answer its questions
/// with `oracle` until it finishes.
struct SessionJob {
  /// Called once, on the worker that first claims the job. May block (e.g.
  /// on IndexCache::GetOrBuild); an error fails this job only.
  std::function<util::Result<Session>()> make;

  /// Answers the session's questions. Must not be shared with other jobs
  /// unless it is thread-safe and order-insensitive.
  std::unique_ptr<core::Oracle> oracle;
};

class SessionManager {
 public:
  struct Options {
    /// Worker threads: >= 1 exact, 0 = one per hardware thread. Capped at
    /// the job count; 1 runs everything inline on the calling thread.
    int threads = 1;

    /// Interactions a worker performs on a claimed session before
    /// requeueing it (fairness knob); 0 = run a claimed session to
    /// completion (coarsest schedule, fewest queue round-trips).
    size_t steps_per_slice = 8;

    /// Options for the manager-owned IndexCache (see cache()): build
    /// options, the memory-tier capacity bound, and an optional persistent
    /// store tier. The default is the documented bounded capacity
    /// (runtime::kDefaultIndexCacheCapacity); set capacity = 0 to opt back
    /// into PR 3's unbounded never-evicting behavior.
    IndexCacheOptions cache_options;

    /// Bound on jobs admitted per RunAll batch; 0 = unbounded (admit
    /// everything, the PR 3 behavior). Jobs beyond the bound are shed with
    /// kResourceExhausted without running — load-shedding is explicit and
    /// immediate, never a silent queue that grows without limit.
    size_t max_queue = 0;

    /// Budget per job, measured from its first claim (the factory counts);
    /// zero = none. Enforced at slice boundaries: an expired job fails
    /// with kDeadlineExceeded at its next claim, its remaining slots freed.
    std::chrono::milliseconds job_deadline{0};

    /// Budget for the whole RunAll call, from entry; zero = none. When it
    /// expires, every not-yet-finished job is cancelled (kDeadlineExceeded)
    /// as workers reach it — cooperative, no thread is interrupted.
    std::chrono::milliseconds run_deadline{0};

    /// Retry policy for *transient* session-factory failures (the cache's
    /// fail-fast backoff window, an injected fault). max_attempts <= 0
    /// retries until the job deadline says otherwise — the right setting
    /// under chaos schedules where every fault is transient by contract.
    util::RetryPolicy factory_retry;

    /// Bound on concurrently open *hosted* sessions (OpenHosted); 0 =
    /// unbounded. An open past the bound is shed with kResourceExhausted —
    /// the serving front end maps this to a RETRY_LATER frame, so overload
    /// refuses new tenants instead of queueing them.
    size_t max_sessions = 0;

    /// Clock the hosted-session idle timestamps are measured on; nullptr =
    /// the process steady clock. Tests inject a util::FakeClock so
    /// ReapIdleHosted is an exact assertion instead of a sleep. (The
    /// manager-owned cache has its own clock knob in cache_options.)
    const util::MonotonicClock* clock = nullptr;
  };

  /// Counters accumulated across RunAll calls; see stats().
  struct Stats {
    uint64_t completed = 0;  ///< Jobs that finished with a result.
    uint64_t failed = 0;     ///< Jobs that ended in an error (any kind).
    uint64_t shed = 0;       ///< Jobs rejected by admission control.
    uint64_t deadline_exceeded = 0;  ///< Jobs cancelled at a slice boundary.
    uint64_t factory_retries = 0;  ///< Transient factory failures requeued.
    uint64_t slice_faults = 0;  ///< manager.step trips (slice requeued).
    uint64_t degraded_serves = 0;  ///< Cache builds run because the store
                                   ///< tier failed transiently (snapshot of
                                   ///< cache().stats().degraded_builds).
    uint64_t hosted_opened = 0;   ///< Hosted sessions opened.
    uint64_t hosted_closed = 0;   ///< Hosted sessions closed normally.
    uint64_t hosted_aborted = 0;  ///< Hosted sessions dropped via the
                                  ///< detach/abort path (client vanished).
    uint64_t hosted_reaped = 0;   ///< Hosted sessions evicted by ReapIdle.
    uint64_t hosted_shed = 0;     ///< Hosted opens refused by max_sessions.
  };

  SessionManager() : SessionManager(Options{}) {}
  explicit SessionManager(Options options)
      : options_(options), cache_(options.cache_options) {}

  /// Runs every job to completion and returns their results in job order:
  /// the session's final InferenceResult, or the error from its factory /
  /// an inconsistent oracle. Blocks until all jobs finish.
  std::vector<util::Result<core::InferenceResult>> RunAll(
      std::vector<SessionJob> jobs);

  /// The manager-owned index cache. Session factories that capture it
  /// resolve their indexes through one shared, bounded, tiered cache —
  /// the intended wiring for a server bundling worker pool and cache.
  IndexCache& cache() { return cache_; }

  /// Snapshot of the failure/degradation counters (thread-safe; callable
  /// while RunAll is in flight from another thread).
  Stats stats() const;

  // -------------------------------------------------------------------------
  // Hosted sessions (the serving front end's handle model, DESIGN.md §11.2)
  //
  // RunAll drives batch jobs whose oracle is in-process; a *hosted* session
  // is the interactive counterpart: the answers arrive from a remote user
  // on their own schedule, so the manager owns the parked Session and hands
  // out an opaque id. The lifecycle is
  //
  //   OpenHosted(make)      admission-checked (Options::max_sessions →
  //                         kResourceExhausted), runs the factory on the
  //                         calling thread (IndexCache single-flight applies)
  //   AcquireHosted(id)     exclusive lease for one step; a second acquire
  //                         of a busy id is FailedPrecondition — the serving
  //                         layer serializes frames per session, so overlap
  //                         is a protocol violation, not a wait
  //   ReleaseHosted(id)     ends the lease, refreshes the idle clock
  //   CloseHosted(id)       final result + erase (normal end of life)
  //   AbortHosted(id)       detach/abort: drop the session and release its
  //                         IndexCache pin — the path a vanished client
  //                         takes. Safe against a concurrent lease: a busy
  //                         session is erased when its lease releases.
  //   ReapIdleHosted(idle)  evicts every non-busy session idle longer than
  //                         `idle` — the abandoned-session leak fix.
  // -------------------------------------------------------------------------

  /// Opens a hosted session; `make` runs on this thread. Fails with
  /// kResourceExhausted when max_sessions are already open.
  util::Result<uint64_t> OpenHosted(
      const std::function<util::Result<Session>()>& make);

  /// Exclusive lease on a hosted session. NotFound for unknown/closed ids,
  /// FailedPrecondition when already leased. Pair with ReleaseHosted.
  util::Result<Session*> AcquireHosted(uint64_t id);

  /// Ends a lease. If an abort arrived while leased, the session is erased
  /// here. Unknown ids are ignored (the abort may have won).
  void ReleaseHosted(uint64_t id);

  /// Finishes a hosted session normally: returns Result() and erases it.
  /// FailedPrecondition while leased; NotFound for unknown ids.
  util::Result<core::InferenceResult> CloseHosted(uint64_t id);

  /// Drops a hosted session (no result). Deferred while leased. NotFound
  /// for unknown ids.
  util::Status AbortHosted(uint64_t id);

  /// Evicts non-busy hosted sessions idle for longer than `max_idle`;
  /// returns how many were reaped.
  size_t ReapIdleHosted(std::chrono::nanoseconds max_idle);

  /// Open hosted sessions (busy ones included).
  size_t hosted_open() const;

 private:
  /// One parked interactive session. `busy` marks an outstanding lease;
  /// `aborted` defers an AbortHosted that raced a lease.
  struct Hosted {
    Session session;
    bool busy = false;
    bool aborted = false;
    uint64_t last_touch_nanos = 0;  ///< On Options::clock's epoch.

    explicit Hosted(Session s) : session(std::move(s)) {}
  };

  /// The injected clock, or the process steady clock.
  const util::MonotonicClock& clock() const {
    return options_.clock != nullptr ? *options_.clock
                                     : *util::SystemClock();
  }

  Options options_;
  IndexCache cache_;
  mutable std::mutex stats_mu_;
  Stats stats_;
  mutable std::mutex hosted_mu_;
  std::unordered_map<uint64_t, Hosted> hosted_;
  uint64_t next_hosted_id_ = 1;
  size_t hosted_opening_ = 0;  ///< Factories in flight (reserve the bound).
};

}  // namespace runtime
}  // namespace jinfer

#endif  // JINFER_RUNTIME_SESSION_MANAGER_H_
