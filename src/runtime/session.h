// Session: one interactive inference session as a step-driven object.
//
// core::RunInference owns its loop — strategy, oracle and halt check run to
// completion inside one call, which fits a simulated oracle but not a
// runtime multiplexing many users: a real user answers on their own
// schedule, and a worker thread must be able to park a session between
// question and answer. Session splits Algorithm 1 at the interaction
// boundary:
//
//   NextQuestion()  — the strategy's pick, or nullopt once the session is
//                     finished (halt condition Γ, or the interaction cap).
//                     Idempotent: repeated calls return the same pending
//                     class without consulting the strategy again, so a
//                     caller may re-render a question freely.
//   Answer(label)   — applies the user's label to the pending question.
//
// The loop `while (auto q = s.NextQuestion()) s.Answer(oracle(*q));`
// reproduces RunInference exactly — same strategy call sequence, same
// trace, same timing discipline (time inside the two calls is inference
// time; everything between them is the user thinking).
//
// A session optionally shares ownership of its index
// (shared_ptr<const SignatureIndex>, the runtime::IndexCache handout), so
// the cache may evict an instance while sessions on it are still running.

#ifndef JINFER_RUNTIME_SESSION_H_
#define JINFER_RUNTIME_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "core/inference.h"
#include "core/inference_state.h"
#include "core/signature_index.h"
#include "core/strategy.h"
#include "util/result.h"

namespace jinfer {
namespace runtime {

/// Session honors exactly the options RunInference honors — the same
/// struct, so the two surfaces cannot drift apart (the bit-for-bit
/// equivalence property depends on that).
using SessionOptions = core::InferenceOptions;

class Session {
 public:
  /// Shared-ownership form: the session keeps `index` alive (the
  /// IndexCache handout). `strategy` must be non-null.
  Session(std::shared_ptr<const core::SignatureIndex> index,
          std::unique_ptr<core::Strategy> strategy,
          SessionOptions options = {});

  /// Non-owning form for callers that guarantee the index outlives the
  /// session (tests, the experiment harness with a stack-built index).
  Session(const core::SignatureIndex& index,
          std::unique_ptr<core::Strategy> strategy,
          SessionOptions options = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// The class to present next, or nullopt when the session is finished.
  /// Idempotent until the pending question is answered.
  std::optional<core::ClassId> NextQuestion();

  /// Applies the user's label to the pending question. Fails with
  /// FailedPrecondition when no question is pending, and propagates
  /// InconsistentSample (leaving the question pending and the state
  /// untouched) when the label contradicts the sample.
  util::Status Answer(core::Label label);

  /// True once NextQuestion has returned nullopt: either Γ holds or the
  /// interaction cap was reached.
  bool Finished() const { return finished_; }

  size_t num_interactions() const { return num_interactions_; }

  /// T(S+) so far — the hypothesis a UI shows between questions, and the
  /// final answer once finished.
  const core::JoinPredicate& CurrentPredicate() const {
    return state_.InferredPredicate();
  }

  const core::SignatureIndex& index() const { return *index_; }
  const core::InferenceState& state() const { return state_; }

  /// Trace id stamped on this session's observability spans (question
  /// compute, answer apply); 0 = untraced. The serving layer sets the
  /// hosted-session id here so a flight-recorder dump can be filtered to
  /// one tenant.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

  /// Snapshot in core::RunInference's result shape: predicate, interaction
  /// count, inference seconds (time inside NextQuestion/Answer only — user
  /// think-time between calls is excluded by construction), trace.
  core::InferenceResult Result() const;

 private:
  std::shared_ptr<const core::SignatureIndex> keepalive_;
  const core::SignatureIndex* index_;
  std::unique_ptr<core::Strategy> strategy_;
  SessionOptions options_;
  core::InferenceState state_;
  std::optional<core::ClassId> pending_;
  bool finished_ = false;
  bool halted_early_ = false;
  size_t num_interactions_ = 0;
  uint64_t trace_id_ = 0;
  double seconds_ = 0;
  std::vector<core::InteractionRecord> trace_;
};

}  // namespace runtime
}  // namespace jinfer

#endif  // JINFER_RUNTIME_SESSION_H_
