// IndexCache: builds each SignatureIndex at most once under concurrent
// demand and shares it across sessions — now a two-tier cache backed by
// the persistent store (DESIGN.md §8).
//
// The index is the expensive per-instance artifact every session needs, and
// it is immutable once built — the natural unit of sharing for a runtime
// serving many concurrent users over a catalog of instances (the per-user
// protocol of the paper stays untouched; only the shared precomputation is
// factored out). Entries are keyed by a content fingerprint of
// (schema, rows, compression flag), so two callers handing in equal
// relations — whether or not they are the same objects — share one build.
//
// Tiers, in resolution order:
//   memory — resident shared_ptr<const SignatureIndex> entries, bounded by
//            IndexCacheOptions::capacity with count-min-sketch admission
//            (hot instances stay; one-hit wonders never displace them);
//   mapped — an attached store::IndexStore: a miss mmaps the persisted
//            file instead of rebuilding (zero-copy, ~constant time);
//   built  — a full SignatureIndex::Build, persisted back to the store so
//            every later process skips it.
//
// Concurrency contract (single-flight): the first caller to request a
// fingerprint becomes the resolver; callers that race on the same
// fingerprint block on the resolver's result instead of duplicating the
// work. Every caller receives the same shared_ptr<const SignatureIndex>.
// A failed resolution is reported to everyone waiting on it and then
// evicted, so a later request retries instead of caching the error.
// Eviction is safe at any time: handed-out indexes survive via shared
// ownership (a mapped index additionally keeps its file mapping alive).
//
// Failure domains (DESIGN.md §10): a store load that fails *transiently*
// (kUnavailable — fd pressure, an injected store.load.mmap fault) degrades
// to a fresh build instead of failing the lookup (counted in
// stats.degraded_builds); corrupt files were already quarantined by the
// store and likewise fall through to a rebuild. A failed build delivers
// its error to every waiter, and — when the failure was transient — arms a
// per-fingerprint backoff window (capped exponential) during which further
// lookups for that fingerprint fail fast with kUnavailable instead of
// stampeding the builder; the first lookup past the window retries for
// real. Permanent build errors (bad input) never arm backoff: they are
// cheap to reproduce and honest to report.

#ifndef JINFER_RUNTIME_INDEX_CACHE_H_
#define JINFER_RUNTIME_INDEX_CACHE_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/signature_index.h"
#include "relational/relation.h"
#include "store/fingerprint.h"
#include "store/index_store.h"
#include "util/frequency_sketch.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace jinfer {
namespace runtime {

/// The 128-bit instance fingerprint now lives in the store layer (it names
/// persisted files); these aliases keep the PR 3 spelling working.
using InstanceFingerprint = store::InstanceFingerprint;
using store::FingerprintInstance;

/// Which tier satisfied a lookup.
enum class IndexTier : uint8_t {
  kMemory,  ///< Resident entry (or a resolution already in flight).
  kMapped,  ///< Loaded zero-copy from the persistent store.
  kBuilt,   ///< Built from the relations (and persisted, if a store is
            ///< attached).
};

const char* IndexTierName(IndexTier tier);

/// Default bound on resident entries. Bounded is the production default —
/// PR 3's never-evicting behavior is the opt-in (capacity = 0): a runtime
/// meeting millions of instances must not grow its index heap without
/// limit, and with a store attached a non-resident instance costs only an
/// mmap, not a rebuild.
inline constexpr size_t kDefaultIndexCacheCapacity = 64;

struct IndexCacheOptions {
  /// Applied to every build this cache performs. The thread count does not
  /// affect the built index (see SignatureIndexOptions), so it is excluded
  /// from the fingerprint; the compression flag changes the index shape
  /// and is folded in.
  core::SignatureIndexOptions build;

  /// Maximum resident completed entries in the memory tier; 0 = unbounded
  /// (the explicit opt-out). In-flight resolutions are not counted — they
  /// must stay visible for single-flight.
  size_t capacity = kDefaultIndexCacheCapacity;

  /// Optional persistent tier. When set, misses consult the store before
  /// building, and successful builds are persisted back (best-effort: a
  /// store write failure never fails the lookup).
  std::shared_ptr<store::IndexStore> store;

  /// Per-fingerprint backoff after a *transient* resolution failure: the
  /// k-th consecutive failure opens a window of base * 2^(k-1), capped at
  /// `failure_backoff_max`, during which lookups for that fingerprint fail
  /// fast (kUnavailable) instead of re-running the build — a retrying herd
  /// collapses to one builder per window. Zero disables (every lookup
  /// retries immediately, the PR 3 behavior).
  std::chrono::milliseconds failure_backoff_base{100};
  std::chrono::milliseconds failure_backoff_max{5000};

  /// Clock the backoff windows are measured on; nullptr = the process
  /// steady clock. Tests inject a util::FakeClock so window expiry is an
  /// exact assertion instead of a sleep.
  const util::MonotonicClock* clock = nullptr;
};

struct IndexCacheStats {
  uint64_t lookups = 0;  ///< GetOrBuild calls.
  uint64_t hits = 0;     ///< Memory-tier hits (including blocking on a
                         ///< resolution already in flight).
  uint64_t builds = 0;   ///< Full SignatureIndex builds run (succeeded or
                         ///< failed); store loads are counted separately.
  uint64_t failures = 0; ///< Resolutions that ended in an error (evicted).
  uint64_t mapped_loads = 0;  ///< Misses served by mmapping the store.
  uint64_t store_writes = 0;  ///< Built indexes persisted to the store.
  uint64_t evictions = 0;     ///< Residents displaced by a hotter newcomer.
  uint64_t rejected_admissions = 0;  ///< Newcomers denied residency (still
                                     ///< returned to their callers).
  uint64_t degraded_builds = 0;  ///< Builds run because the store tier
                                 ///< failed transiently — served, degraded.
  uint64_t fail_fast = 0;  ///< Lookups rejected inside a failure-backoff
                           ///< window (no build attempted).
  uint64_t backoff_arms = 0;  ///< Transient failures that opened or widened
                              ///< a backoff window.

  /// Memory-tier hit rate — the fraction of lookups that needed neither a
  /// build nor a store load.
  double HitRate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// A GetOrBuildTiered result: the shared index plus which tier produced it.
struct TieredIndex {
  std::shared_ptr<const core::SignatureIndex> index;
  IndexTier tier = IndexTier::kMemory;
};

class IndexCache {
 public:
  explicit IndexCache(IndexCacheOptions options = {})
      : options_(std::move(options)),
        sketch_(options_.capacity == 0 ? 1024 : 16 * options_.capacity) {}

  /// PR 3 constructor shape: build options only, defaults elsewhere.
  explicit IndexCache(core::SignatureIndexOptions build_options)
      : IndexCache(IndexCacheOptions{build_options, kDefaultIndexCacheCapacity,
                                     nullptr}) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the shared index for (r, p), resolving it if this is the
  /// first request for the fingerprint — store load when attached, build
  /// otherwise. Blocks while another caller is resolving the same
  /// fingerprint (single-flight). Thread-safe.
  util::Result<std::shared_ptr<const core::SignatureIndex>> GetOrBuild(
      const rel::Relation& r, const rel::Relation& p);

  /// GetOrBuild plus the tier that satisfied the lookup (what the CLI
  /// prints and the benches count).
  util::Result<TieredIndex> GetOrBuildTiered(const rel::Relation& r,
                                             const rel::Relation& p);

  /// Number of resident entries (completed or in-flight resolutions).
  size_t size() const;

  IndexCacheStats stats() const;

  const IndexCacheOptions& options() const { return options_; }

  /// Drops every entry. In-flight resolutions complete and are delivered
  /// to their waiters but are not re-inserted.
  void Clear();

 private:
  using BuildOutcome = util::Result<std::shared_ptr<const core::SignatureIndex>>;

  struct FingerprintHash {
    size_t operator()(const InstanceFingerprint& f) const {
      return static_cast<size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// The future lets losers of the insert race wait without holding mu_
  /// while the winner resolves; the id lets the winner touch exactly its
  /// own entry afterwards (never a successor inserted after a Clear).
  /// `ready` marks completed entries — only those are eviction candidates.
  struct Entry {
    std::shared_future<BuildOutcome> future;
    uint64_t id = 0;
    bool ready = false;
  };

  /// 64-bit sketch key for a fingerprint.
  static uint64_t SketchKey(const InstanceFingerprint& f) {
    return f.hi ^ util::Mix64(f.lo);
  }

  /// Backoff bookkeeping for a fingerprint whose last resolution failed
  /// transiently. Erased on the next success.
  struct FailureState {
    uint32_t consecutive = 0;
    uint64_t retry_after_nanos = 0;  ///< On options_.clock's epoch.
  };

  /// The injected clock, or the process steady clock.
  const util::MonotonicClock& clock() const {
    return options_.clock != nullptr ? *options_.clock
                                     : *util::SystemClock();
  }

  /// Enforces the capacity bound after entry `id` for `key` completed:
  /// count-min admission — evict the coldest resident if the newcomer is
  /// hotter, otherwise drop the newcomer. Caller holds mu_.
  void EnforceCapacityLocked(const InstanceFingerprint& key, uint64_t id);

  IndexCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<InstanceFingerprint, Entry, FingerprintHash> entries_;
  std::unordered_map<InstanceFingerprint, FailureState, FingerprintHash>
      failures_;
  util::FrequencySketch sketch_;
  uint64_t next_id_ = 0;
  IndexCacheStats stats_;
};

}  // namespace runtime
}  // namespace jinfer

#endif  // JINFER_RUNTIME_INDEX_CACHE_H_
