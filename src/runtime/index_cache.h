// IndexCache: builds each SignatureIndex at most once under concurrent
// demand and shares it across sessions.
//
// The index is the expensive per-instance artifact every session needs, and
// it is immutable once built — the natural unit of sharing for a runtime
// serving many concurrent users over a catalog of instances (the per-user
// protocol of the paper stays untouched; only the shared precomputation is
// factored out). Entries are keyed by a content fingerprint of
// (schema, rows, compression flag), so two callers handing in equal
// relations — whether or not they are the same objects — share one build.
//
// Concurrency contract (single-flight): the first caller to request a
// fingerprint becomes the builder; callers that race on the same
// fingerprint block on the builder's result instead of duplicating the
// work. Every caller receives the same shared_ptr<const SignatureIndex>.
// A failed build is reported to everyone waiting on it and then evicted,
// so a later request retries instead of caching the error.

#ifndef JINFER_RUNTIME_INDEX_CACHE_H_
#define JINFER_RUNTIME_INDEX_CACHE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/signature_index.h"
#include "relational/relation.h"
#include "util/result.h"

namespace jinfer {
namespace runtime {

/// 128-bit content fingerprint of an inference instance: relation names,
/// attribute names, every cell value (with its runtime type), and the
/// compression flag. Equal instances always collide; distinct instances
/// collide with probability ~2^-128 per pair, which the cache treats as
/// never (a collision would silently alias two instances).
struct InstanceFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const InstanceFingerprint& a,
                         const InstanceFingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// Fingerprints (r, p, compress). Deterministic across runs on one
/// platform — it folds explicit type tags and payload bytes, never
/// pointer values or std::hash. String bytes are absorbed in native byte
/// order, so fingerprints are NOT comparable across endianness; they are
/// in-process cache keys, not a persistable format.
InstanceFingerprint FingerprintInstance(const rel::Relation& r,
                                        const rel::Relation& p, bool compress);

struct IndexCacheStats {
  uint64_t lookups = 0;  ///< GetOrBuild calls.
  uint64_t hits = 0;     ///< Calls served from an existing entry (including
                         ///< blocking on a build already in flight).
  uint64_t builds = 0;   ///< Builds actually started (one per miss).
  uint64_t failures = 0; ///< Builds that ended in an error (evicted).

  double HitRate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class IndexCache {
 public:
  /// `build_options` apply to every build this cache performs. The thread
  /// count does not affect the built index (see SignatureIndexOptions), so
  /// it is excluded from the fingerprint; the compression flag changes the
  /// index shape and is folded in.
  explicit IndexCache(core::SignatureIndexOptions build_options = {})
      : options_(build_options) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the shared index for (r, p), building it if this is the first
  /// request for the fingerprint. Blocks while another caller is building
  /// the same fingerprint (single-flight). Thread-safe.
  util::Result<std::shared_ptr<const core::SignatureIndex>> GetOrBuild(
      const rel::Relation& r, const rel::Relation& p);

  /// Number of resident entries (completed or in-flight builds).
  size_t size() const;

  IndexCacheStats stats() const;

  /// Drops every entry. In-flight builds complete and are delivered to
  /// their waiters but are not re-inserted.
  void Clear();

 private:
  using BuildOutcome = util::Result<std::shared_ptr<const core::SignatureIndex>>;

  struct FingerprintHash {
    size_t operator()(const InstanceFingerprint& f) const {
      return static_cast<size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// The future lets losers of the insert race wait without holding mu_
  /// while the winner builds; the id lets the winner evict exactly its own
  /// entry on failure (never a successor inserted after a Clear).
  struct Entry {
    std::shared_future<BuildOutcome> future;
    uint64_t id = 0;
  };

  core::SignatureIndexOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<InstanceFingerprint, Entry, FingerprintHash> entries_;
  uint64_t next_id_ = 0;
  IndexCacheStats stats_;
};

}  // namespace runtime
}  // namespace jinfer

#endif  // JINFER_RUNTIME_INDEX_CACHE_H_
