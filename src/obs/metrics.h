// Process-wide metrics registry (DESIGN.md §13): named counters, gauges
// and log₂-bucketed latency histograms, built for instrumentation inside
// hot paths.
//
// Cost discipline — the same one util/failpoint.h proved out for the
// disarmed fast path:
//   - Every increment starts with one relaxed atomic load of the global
//     enable flag; with metrics disabled that load IS the whole cost
//     (BM_MetricsDisarmed, sub-nanosecond).
//   - Enabled increments are wait-free: one relaxed fetch_add on a
//     cache-line-padded per-thread shard. Threads hash onto kMetricShards
//     cells, so concurrent writers on different cores never contend on a
//     line (BM_MetricsCounterInc, single-digit nanoseconds).
//   - Reads (Value / Snapshot) sum the shards — O(shards), paid only by
//     the exposition path, never by the instrumented code.
//   - Compiling with JINFER_NO_METRICS empties every recording method so
//     the layer costs literally nothing; call sites need no #ifdefs.
//
// Histograms bucket by position of the highest set bit: bucket 0 holds
// exactly the value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1], 65 buckets
// total so uint64_t nanosecond latencies always fit. Quantiles interpolate
// linearly inside the selected bucket (HistogramSnapshot::Quantile) — the
// one shared definition the server's StatsOk summaries, the Prometheus
// text and bench/throughput_sessions.cc all report through.
//
// Naming convention: jinfer_<subsystem>_<metric> (counters end in _total,
// histograms in _nanos). Every production metric name is a constant in
// obs/metric_names.h; scripts/check_metric_names.py enforces both the
// convention and the single point of registration.

#ifndef JINFER_OBS_METRICS_H_
#define JINFER_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jinfer {
namespace obs {

/// Runtime kill switch, default on. One relaxed load on every record path
/// — flipping it off reduces the whole obs layer to that load (the
/// "disarmed" state the bench suite prices).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {
extern std::atomic<uint32_t> g_metrics_enabled;
}  // namespace internal

inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed) != 0;
}

/// Shard count per metric: a small power of two. More shards than typical
/// worker counts buys contention-freedom; padding bounds the footprint at
/// 64 B per shard per counter.
inline constexpr size_t kMetricShards = 16;

/// This thread's shard index: threads take round-robin tickets on first
/// touch, so up to kMetricShards concurrent threads never share a cell.
inline size_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  // Zero-initialized (constant-init) thread_local: the access compiles to
  // a bare TLS load with no init-guard check, worth ~1-2 ns per Inc. 0
  // means "no ticket yet"; the stored value is shard + 1.
  thread_local uint32_t shard_plus1 = 0;
  if (shard_plus1 == 0) [[unlikely]] {
    shard_plus1 = (next.fetch_add(1, std::memory_order_relaxed) &
                   (kMetricShards - 1)) +
                  1;
  }
  return shard_plus1 - 1;
}

/// Monotone event count. Wait-free increments; Value() sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
#ifndef JINFER_NO_METRICS
    if (!MetricsEnabled()) return;
    cells_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
#ifndef JINFER_NO_METRICS
    uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
#else
    return 0;
#endif
  }

 private:
#ifndef JINFER_NO_METRICS
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricShards];
#endif
};

/// Point-in-time level (open connections, queue depth). Set-dominated, so
/// a single cell — gauges are updated from snapshot paths, not hot loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#ifndef JINFER_NO_METRICS
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(int64_t delta) {
#ifndef JINFER_NO_METRICS
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const {
#ifndef JINFER_NO_METRICS
    return value_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

 private:
#ifndef JINFER_NO_METRICS
  std::atomic<int64_t> value_{0};
#endif
};

/// Bucket count: bucket 0 (the value 0) plus one per possible bit width.
inline constexpr size_t kHistogramBuckets = 65;

/// log₂ bucketing: 0 → bucket 0; v > 0 → bucket bit_width(v), i.e. bucket
/// b >= 1 covers [2^(b-1), 2^b - 1]. UINT64_MAX lands in bucket 64.
inline size_t HistogramBucket(uint64_t v) {
  return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

/// A read-side histogram copy plus its quantile arithmetic.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Inclusive value range of bucket b (BucketLower(0) == BucketUpper(0)
  /// == 0).
  static uint64_t BucketLower(size_t b);
  static uint64_t BucketUpper(size_t b);

  /// The q-quantile (q in [0, 1]) under linear interpolation inside the
  /// selected bucket: the rank ceil(q * count) (at least 1) picks the
  /// bucket; the rank's position among the bucket's own samples places the
  /// value between the bucket's bounds. 0 when empty. Deterministic, so
  /// tests pin golden values against it.
  double Quantile(double q) const;
};

/// Latency histogram over uint64_t samples (the repo records nanoseconds).
/// Record is wait-free: two relaxed fetch_adds on this thread's shard.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
#ifndef JINFER_NO_METRICS
    if (!MetricsEnabled()) return;
    Shard& s = shards_[ThisThreadShard()];
    s.buckets[HistogramBucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot out;
#ifndef JINFER_NO_METRICS
    for (const Shard& s : shards_) {
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t n : out.buckets) out.count += n;
#endif
    return out;
  }

  /// Folds a single-owner LocalHistogram in (one fetch_add per touched
  /// bucket plus one for the sum) and resets it. Defined after
  /// LocalHistogram below.
  inline void Merge(class LocalHistogram& local);

 private:
#ifndef JINFER_NO_METRICS
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kHistogramBuckets]{};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kMetricShards];
#endif
};

/// Unsynchronized histogram accumulator for a single-owner hot loop.
/// Record() is a plain array increment (~1 ns — no atomics, no TLS);
/// the owner folds batches into a shared Histogram via Histogram::Merge,
/// paying the atomic cost once per touched bucket instead of twice per
/// sample. Sessions use this for their per-interaction latencies: the
/// Session object is externally serialized (batch workers hand it off
/// under the manager's lock, hosted access is busy-leased), so plain
/// fields are as safe as its existing accounting. Samples are invisible
/// to Snapshot() until merged — owners flush every few dozen samples and
/// on destruction, trading bounded staleness for the hot-path cost.
class LocalHistogram {
 public:
  LocalHistogram() = default;
  LocalHistogram(const LocalHistogram&) = delete;
  LocalHistogram& operator=(const LocalHistogram&) = delete;

  /// Moves reset the source so a moved-from owner's flush is a no-op —
  /// without this, every sample would merge once per move plus once.
  LocalHistogram(LocalHistogram&& other) noexcept { Steal(other); }
  LocalHistogram& operator=(LocalHistogram&& other) noexcept {
    if (this != &other) Steal(other);
    return *this;
  }

  void Record(uint64_t v) {
#ifndef JINFER_NO_METRICS
    const size_t b = HistogramBucket(v);
    ++counts_[b];
    sum_ += v;
    ++count_;
    if (b < lo_) lo_ = b;
    if (b > hi_) hi_ = b;
#else
    (void)v;
#endif
  }

  uint64_t count() const {
#ifndef JINFER_NO_METRICS
    return count_;
#else
    return 0;
#endif
  }

  void Reset() {
#ifndef JINFER_NO_METRICS
    if (count_ == 0) return;
    for (size_t b = lo_; b <= hi_; ++b) counts_[b] = 0;
    sum_ = 0;
    count_ = 0;
    lo_ = kHistogramBuckets;
    hi_ = 0;
#endif
  }

 private:
  friend class Histogram;

  void Steal(LocalHistogram& other) {
#ifndef JINFER_NO_METRICS
    counts_ = other.counts_;
    sum_ = other.sum_;
    count_ = other.count_;
    lo_ = other.lo_;
    hi_ = other.hi_;
    other.Reset();
#else
    (void)other;
#endif
  }

#ifndef JINFER_NO_METRICS
  std::array<uint64_t, kHistogramBuckets> counts_{};
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
  /// Touched-bucket range, so Reset and Merge walk a few entries, not 65.
  size_t lo_ = kHistogramBuckets;
  size_t hi_ = 0;
#endif
};

inline void Histogram::Merge(LocalHistogram& local) {
#ifndef JINFER_NO_METRICS
  if (local.count_ == 0 || !MetricsEnabled()) {
    local.Reset();
    return;
  }
  Shard& s = shards_[ThisThreadShard()];
  for (size_t b = local.lo_; b <= local.hi_; ++b) {
    if (local.counts_[b] != 0) {
      s.buckets[b].fetch_add(local.counts_[b], std::memory_order_relaxed);
    }
  }
  s.sum.fetch_add(local.sum_, std::memory_order_relaxed);
  local.Reset();
#else
  (void)local;
#endif
}

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// One registered metric, copied out for exposition.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;  ///< kCounter.
  int64_t gauge = 0;     ///< kGauge.
  HistogramSnapshot histogram;  ///< kHistogram.
};

/// Name → metric table. Registration (first call per name) takes a mutex;
/// every later call for the same name returns the same object, so call
/// sites cache a `static Counter&` and the steady state never locks.
/// Returned references live as long as the registry (stable addresses).
/// Registering one name as two different kinds is a programming error and
/// aborts.
class Registry {
 public:
  /// The process-wide instance every production metric registers in.
  static Registry& Global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Every registered metric, in registration order (deterministic
  /// exposition). Values are relaxed reads — a point-in-time view, exact
  /// once writers quiesce.
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  struct Slot;
  Slot& Resolve(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace obs
}  // namespace jinfer

#endif  // JINFER_OBS_METRICS_H_
