#include "obs/exposition.h"

#include "obs/metric_names.h"
#include "util/simd/dispatch.h"
#include "util/string_util.h"

namespace jinfer {
namespace obs {

namespace {

void RenderHistogram(const std::string& name, const HistogramSnapshot& h,
                     std::string& out) {
  out += util::StrFormat("# TYPE %s histogram\n", name.c_str());
  size_t highest = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] != 0) highest = b;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b <= highest; ++b) {
    cumulative += h.buckets[b];
    out += util::StrFormat(
        "%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
        static_cast<unsigned long long>(HistogramSnapshot::BucketUpper(b)),
        static_cast<unsigned long long>(cumulative));
  }
  out += util::StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.count));
  out += util::StrFormat("%s_sum %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.sum));
  out += util::StrFormat("%s_count %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.count));
  for (double q : {0.5, 0.9, 0.99}) {
    out += util::StrFormat("%s{quantile=\"%g\"} %.1f\n", name.c_str(), q,
                           h.Quantile(q));
  }
}

}  // namespace

std::string RenderPrometheusText(
    const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  for (const MetricSnapshot& m : metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        out += util::StrFormat("# TYPE %s counter\n%s %llu\n",
                               m.name.c_str(), m.name.c_str(),
                               static_cast<unsigned long long>(m.counter));
        break;
      case MetricKind::kGauge:
        out += util::StrFormat("# TYPE %s gauge\n%s %lld\n", m.name.c_str(),
                               m.name.c_str(),
                               static_cast<long long>(m.gauge));
        break;
      case MetricKind::kHistogram:
        RenderHistogram(m.name, m.histogram, out);
        break;
    }
  }
  return out;
}

std::string RenderPrometheusText() {
  // Refresh the backend info gauge at render time: util/simd cannot depend
  // on obs (layering), so the exposition layer pulls rather than the
  // dispatcher pushing.
  Registry::Global()
      .gauge(kKernelBackendInfo)
      .Set(static_cast<int64_t>(util::simd::ActiveKernelBackend()));
  return RenderPrometheusText(Registry::Global().Snapshot());
}

std::vector<HistogramSummary> SummarizeHistograms() {
  std::vector<HistogramSummary> out;
  for (const MetricSnapshot& m : Registry::Global().Snapshot()) {
    if (m.kind != MetricKind::kHistogram) continue;
    HistogramSummary s;
    s.name = m.name;
    s.count = m.histogram.count;
    s.sum = m.histogram.sum;
    s.p50 = m.histogram.Quantile(0.5);
    s.p99 = m.histogram.Quantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace obs
}  // namespace jinfer
