#include "obs/trace.h"

#include <bit>
#include <cstdio>
#include <mutex>

#include "obs/metric_names.h"
#include "util/string_util.h"

namespace jinfer {
namespace obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIndexBuild: return "index_build";
    case SpanKind::kCacheProbe: return "cache_probe";
    case SpanKind::kStoreLoad: return "store_load";
    case SpanKind::kStorePut: return "store_put";
    case SpanKind::kQuestionCompute: return "question_compute";
    case SpanKind::kMinimaxSearch: return "minimax_search";
    case SpanKind::kAnswerApply: return "answer_apply";
    case SpanKind::kFrameDecode: return "frame_decode";
    case SpanKind::kFrameQueue: return "frame_queue";
    case SpanKind::kFrameExecute: return "frame_execute";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
      mask_(slots_.size() - 1),
      drop_counter_(&Registry::Global().counter(kTraceSpansDroppedTotal)) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // Leaked.
  return *recorder;
}

void FlightRecorder::Record(const SpanRecord& record) {
#ifndef JINFER_NO_METRICS
  if (!MetricsEnabled()) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Odd sequence = write in progress: a reader that sees it skips the
  // slot. Two writers lapping each other on one slot can interleave, but
  // then neither leaves the exact even sequence a reader accepts, so a
  // torn record is never returned — it just counts as dropped.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.start_nanos.store(record.start_nanos, std::memory_order_relaxed);
  slot.duration_nanos.store(record.duration_nanos,
                            std::memory_order_relaxed);
  slot.kind_detail.store(
      (record.detail << 8) | static_cast<uint64_t>(record.kind),
      std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
  if (ticket >= slots_.size()) drop_counter_->Inc();
#else
  (void)record;
#endif
}

std::vector<SpanRecord> FlightRecorder::Snapshot(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
#ifndef JINFER_NO_METRICS
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  const uint64_t first = head > cap ? head - cap : 0;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t expected = 2 * ticket + 2;
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    SpanRecord r;
    r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    r.start_nanos = slot.start_nanos.load(std::memory_order_relaxed);
    r.duration_nanos = slot.duration_nanos.load(std::memory_order_relaxed);
    const uint64_t kd = slot.kind_detail.load(std::memory_order_relaxed);
    r.detail = kd >> 8;
    r.kind = static_cast<SpanKind>(kd & 0xff);
    // Re-check after the copy: a writer may have lapped us mid-read.
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    if (trace_id != 0 && r.trace_id != trace_id) continue;
    out.push_back(r);
  }
#else
  (void)trace_id;
#endif
  return out;
}

uint64_t FlightRecorder::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t cap = slots_.size();
  return head > cap ? head - cap : 0;
}

std::string RenderFlightDump(const std::string& reason,
                             const std::vector<SpanRecord>& spans) {
  std::string out = util::StrFormat("flight recorder dump: %s (%zu spans)\n",
                                    reason.c_str(), spans.size());
  const SpanRecord* slowest = nullptr;
  for (const SpanRecord& s : spans) {
    if (slowest == nullptr || s.duration_nanos > slowest->duration_nanos) {
      slowest = &s;
    }
  }
  if (slowest != nullptr) {
    out += util::StrFormat(
        "slowest span: %s trace=%llu duration=%.3f ms detail=%llu\n",
        SpanKindName(slowest->kind),
        static_cast<unsigned long long>(slowest->trace_id),
        static_cast<double>(slowest->duration_nanos) * 1e-6,
        static_cast<unsigned long long>(slowest->detail));
  }
  for (const SpanRecord& s : spans) {
    out += util::StrFormat(
        "  %-16s trace=%llu start=%llu duration_ns=%llu detail=%llu\n",
        SpanKindName(s.kind), static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.start_nanos),
        static_cast<unsigned long long>(s.duration_nanos),
        static_cast<unsigned long long>(s.detail));
  }
  return out;
}

namespace {

std::mutex& LastDumpMutex() {
  static std::mutex mu;
  return mu;
}

std::string& LastDumpStorage() {
  static std::string* dump = new std::string();  // Leaked.
  return *dump;
}

}  // namespace

void EmitFlightDump(const std::string& reason, uint64_t trace_id) {
  std::vector<SpanRecord> spans =
      FlightRecorder::Global().Snapshot(trace_id);
  std::string rendered = RenderFlightDump(reason, spans);
  Registry::Global().counter(kTraceDumpsTotal).Inc();
  // One stderr line, not the whole table: the dump is for the operator to
  // pull (LastFlightDump, --metrics-dump), the line is the breadcrumb.
  const size_t newline = rendered.find('\n');
  std::fprintf(stderr, "[jinfer-obs] %.*s\n",
               static_cast<int>(newline == std::string::npos
                                    ? rendered.size()
                                    : newline),
               rendered.c_str());
  std::lock_guard<std::mutex> lock(LastDumpMutex());
  LastDumpStorage() = std::move(rendered);
}

std::string LastFlightDump() {
  std::lock_guard<std::mutex> lock(LastDumpMutex());
  return LastDumpStorage();
}

}  // namespace obs
}  // namespace jinfer
