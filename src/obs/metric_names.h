// Every production metric name, in one place (DESIGN.md §13.4).
//
// Convention: jinfer_<subsystem>_<metric>, lowercase with underscores;
// counters end in _total, latency histograms in _nanos, gauges name the
// level they report. scripts/check_metric_names.py lints this file for
// duplicates and non-conforming names, and fails CI when a "jinfer_"
// string literal appears anywhere else under src/ — a metric that is not
// registered here does not exist.

#ifndef JINFER_OBS_METRIC_NAMES_H_
#define JINFER_OBS_METRIC_NAMES_H_

namespace jinfer {
namespace obs {

// --- store: the persistent index tier (store/index_store.cc) -------------
inline constexpr char kStoreLoadsTotal[] = "jinfer_store_loads_total";
inline constexpr char kStoreLoadHitsTotal[] = "jinfer_store_load_hits_total";
inline constexpr char kStoreLoadMissesTotal[] =
    "jinfer_store_load_misses_total";
inline constexpr char kStoreWritesTotal[] = "jinfer_store_writes_total";
inline constexpr char kStoreSkippedWritesTotal[] =
    "jinfer_store_skipped_writes_total";
inline constexpr char kStoreQuarantinedTotal[] =
    "jinfer_store_quarantined_total";
inline constexpr char kStorePutRetriesTotal[] =
    "jinfer_store_put_retries_total";
inline constexpr char kStoreLoadRetriesTotal[] =
    "jinfer_store_load_retries_total";
inline constexpr char kStoreLoadNanos[] = "jinfer_store_load_nanos";
inline constexpr char kStorePutNanos[] = "jinfer_store_put_nanos";

// --- cache: the tiered IndexCache (runtime/index_cache.cc) ---------------
inline constexpr char kCacheLookupsTotal[] = "jinfer_cache_lookups_total";
inline constexpr char kCacheHitsTotal[] = "jinfer_cache_hits_total";
inline constexpr char kCacheBuildsTotal[] = "jinfer_cache_builds_total";
inline constexpr char kCacheFailuresTotal[] = "jinfer_cache_failures_total";
inline constexpr char kCacheMappedLoadsTotal[] =
    "jinfer_cache_mapped_loads_total";
inline constexpr char kCacheStoreWritesTotal[] =
    "jinfer_cache_store_writes_total";
inline constexpr char kCacheEvictionsTotal[] = "jinfer_cache_evictions_total";
inline constexpr char kCacheRejectedAdmissionsTotal[] =
    "jinfer_cache_rejected_admissions_total";
inline constexpr char kCacheDegradedBuildsTotal[] =
    "jinfer_cache_degraded_builds_total";
inline constexpr char kCacheFailFastTotal[] = "jinfer_cache_fail_fast_total";
inline constexpr char kCacheBackoffArmsTotal[] =
    "jinfer_cache_backoff_arms_total";
inline constexpr char kCacheProbeNanos[] = "jinfer_cache_probe_nanos";
inline constexpr char kCacheBuildNanos[] = "jinfer_cache_build_nanos";

// --- manager: SessionManager batch + hosted lifecycle --------------------
inline constexpr char kManagerCompletedTotal[] =
    "jinfer_manager_completed_total";
inline constexpr char kManagerFailedTotal[] = "jinfer_manager_failed_total";
inline constexpr char kManagerShedTotal[] = "jinfer_manager_shed_total";
inline constexpr char kManagerDeadlineExceededTotal[] =
    "jinfer_manager_deadline_exceeded_total";
inline constexpr char kManagerFactoryRetriesTotal[] =
    "jinfer_manager_factory_retries_total";
inline constexpr char kManagerSliceFaultsTotal[] =
    "jinfer_manager_slice_faults_total";
inline constexpr char kManagerHostedOpenedTotal[] =
    "jinfer_manager_hosted_opened_total";
inline constexpr char kManagerHostedClosedTotal[] =
    "jinfer_manager_hosted_closed_total";
inline constexpr char kManagerHostedAbortedTotal[] =
    "jinfer_manager_hosted_aborted_total";
inline constexpr char kManagerHostedReapedTotal[] =
    "jinfer_manager_hosted_reaped_total";
inline constexpr char kManagerHostedShedTotal[] =
    "jinfer_manager_hosted_shed_total";

// --- session: the step API (runtime/session.cc) --------------------------
inline constexpr char kSessionQuestionNanos[] =
    "jinfer_session_question_nanos";
inline constexpr char kSessionAnswerNanos[] = "jinfer_session_answer_nanos";

// --- minimax: the exact-search engine (core/strategies) ------------------
inline constexpr char kMinimaxSearchesTotal[] =
    "jinfer_minimax_searches_total";
inline constexpr char kMinimaxNodesTotal[] = "jinfer_minimax_nodes_total";
inline constexpr char kMinimaxTtProbesTotal[] =
    "jinfer_minimax_tt_probes_total";
inline constexpr char kMinimaxTtHitsTotal[] = "jinfer_minimax_tt_hits_total";
inline constexpr char kMinimaxTtStoresTotal[] =
    "jinfer_minimax_tt_stores_total";
inline constexpr char kMinimaxSearchNanos[] = "jinfer_minimax_search_nanos";

// --- server: the network front end (server/server.cc) --------------------
inline constexpr char kServerConnectionsAcceptedTotal[] =
    "jinfer_server_connections_accepted_total";
inline constexpr char kServerFramesReadTotal[] =
    "jinfer_server_frames_read_total";
inline constexpr char kServerFramesWrittenTotal[] =
    "jinfer_server_frames_written_total";
inline constexpr char kServerProtocolErrorsTotal[] =
    "jinfer_server_protocol_errors_total";
inline constexpr char kServerDeadlineClosesTotal[] =
    "jinfer_server_deadline_closes_total";
inline constexpr char kServerWorkShedTotal[] =
    "jinfer_server_work_shed_total";
inline constexpr char kServerConnectionsOpen[] =
    "jinfer_server_connections_open";
inline constexpr char kServerSessionsOpen[] = "jinfer_server_sessions_open";
inline constexpr char kServerPendingWork[] = "jinfer_server_pending_work";
inline constexpr char kServerFrameDecodeNanos[] =
    "jinfer_server_frame_decode_nanos";
inline constexpr char kServerFrameQueueNanos[] =
    "jinfer_server_frame_queue_nanos";
inline constexpr char kServerFrameExecuteNanos[] =
    "jinfer_server_frame_execute_nanos";

// --- kernels: the dispatched SIMD backend (util/simd, DESIGN.md §12.4) ---
// Info-style gauge: the value is the active KernelBackend enum
// (0 = scalar, 1 = avx2, 2 = avx512), refreshed at each exposition render
// so a forced or test-set backend shows up on the next scrape.
inline constexpr char kKernelBackendInfo[] = "jinfer_kernel_backend_info";

// --- trace: the flight recorder's own health (obs/trace.cc) --------------
inline constexpr char kTraceSpansDroppedTotal[] =
    "jinfer_trace_spans_dropped_total";
inline constexpr char kTraceDumpsTotal[] = "jinfer_trace_dumps_total";

}  // namespace obs
}  // namespace jinfer

#endif  // JINFER_OBS_METRIC_NAMES_H_
