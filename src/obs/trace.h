// Trace layer (DESIGN.md §13.2): per-session span records in a fixed-size
// lock-free ring buffer — a flight recorder, not a log. Instrumented code
// drops one fixed-width record per timed operation (cache probe, store
// load, question compute, minimax search, frame decode/queue/execute);
// the ring keeps the most recent few thousand and silently overwrites the
// rest, so the recording cost is bounded and constant no matter how long
// the process runs. Dumps happen on demand (interactive_cli
// --metrics-dump) and on error/deadline paths (EmitFlightDump), where the
// last seconds of spans are exactly the forensics "why was this slow?"
// needs.
//
// Concurrency: Record is wait-free — one relaxed fetch_add claims a
// ticket, then five relaxed atomic stores fill the slot, bracketed by a
// per-slot sequence word (odd while writing, 2*ticket+2 when complete).
// Snapshot validates the sequence before and after copying a slot and
// skips torn records, so readers never block writers and TSan sees only
// atomics. Records lost to wraparound are counted (dropped(), plus the
// jinfer_trace_spans_dropped_total counter) — overflow is silent to the
// writer but never invisible to the operator.

#ifndef JINFER_OBS_TRACE_H_
#define JINFER_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace jinfer {
namespace obs {

/// What a span timed. Values are wire-stable (they appear in dumps).
enum class SpanKind : uint8_t {
  kIndexBuild = 1,     ///< SignatureIndex::Build inside the cache.
  kCacheProbe = 2,     ///< IndexCache::GetOrBuildTiered, whole call.
  kStoreLoad = 3,      ///< IndexStore::Load.
  kStorePut = 4,       ///< IndexStore::Put.
  kQuestionCompute = 5,  ///< Session::NextQuestion (strategy pick).
  kMinimaxSearch = 6,  ///< MinimaxEngine root search (detail = nodes).
  kAnswerApply = 7,    ///< Session::Answer (ApplyLabel).
  kFrameDecode = 8,    ///< Connection frame assembly + checksum.
  kFrameQueue = 9,     ///< Work-queue wait, dispatch → worker pickup.
  kFrameExecute = 10,  ///< Worker frame handler (detail = frame type).
};

const char* SpanKindName(SpanKind kind);

/// One timed operation. trace_id groups spans belonging to one session
/// (the hosted-session id server-side; 0 = unattributed).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
  uint64_t detail = 0;  ///< Kind-specific: tier, node count, frame type.
  SpanKind kind = SpanKind::kCacheProbe;
};

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two. The default holds the last
  /// few thousand spans — seconds of serving traffic — in ~300 KiB.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder all production spans land in.
  static FlightRecorder& Global();

  /// Wait-free append. A no-op when metrics are disabled (same kill
  /// switch as the registry) or under JINFER_NO_METRICS.
  void Record(const SpanRecord& record);

  /// The retained records in ticket (= chronological claim) order, oldest
  /// first, torn slots skipped. trace_id != 0 filters to one session.
  std::vector<SpanRecord> Snapshot(uint64_t trace_id = 0) const;

  /// Total records ever claimed / lost to wraparound.
  uint64_t recorded() const;
  uint64_t dropped() const;

  size_t capacity() const { return slots_.size(); }

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  /// Slot fields are individually atomic (relaxed) so concurrent
  /// writer/reader access is data-race-free by construction; seq is the
  /// torn-read detector. Line-aligned: consecutive tickets are claimed by
  /// different threads, so two slots sharing a cache line would put every
  /// concurrent pair of writers in a false-sharing ping-pong (measured as
  /// a several-percent BM_ThroughputSessions hit at 4+ workers).
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> start_nanos{0};
    std::atomic<uint64_t> duration_nanos{0};
    std::atomic<uint64_t> kind_detail{0};  ///< detail << 8 | kind.
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> head_{0};
  Counter* drop_counter_;  ///< jinfer_trace_spans_dropped_total.
};

/// RAII span: times construction → destruction on the steady clock
/// (Stopwatch's devirtualized default — spans are the hottest timing
/// call sites in the process), then records into the global flight
/// recorder and (optionally) a latency histogram — one timing read
/// shared by both sinks.
class ScopedSpan {
 public:
  ScopedSpan(SpanKind kind, uint64_t trace_id,
             Histogram* histogram = nullptr)
      : kind_(kind), trace_id_(trace_id), histogram_(histogram) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_detail(uint64_t detail) { detail_ = detail; }

  ~ScopedSpan() {
#ifndef JINFER_NO_METRICS
    if (!MetricsEnabled()) return;
    const uint64_t duration = watch_.ElapsedNanos();
    if (histogram_ != nullptr) histogram_->Record(duration);
    FlightRecorder::Global().Record(SpanRecord{
        trace_id_, watch_.StartNanos(), duration, detail_, kind_});
#endif
  }

 private:
  SpanKind kind_;
  uint64_t trace_id_;
  uint64_t detail_ = 0;
  Histogram* histogram_;
  util::Stopwatch watch_;
};

/// Renders `spans` as a human-readable table headed by `reason`, naming
/// the slowest span explicitly ("slowest span: ...") — the line the
/// deadline/error paths exist to produce.
std::string RenderFlightDump(const std::string& reason,
                             const std::vector<SpanRecord>& spans);

/// Snapshots the global recorder (filtered by trace_id when != 0),
/// renders it, stores it as the last dump (LastFlightDump) and writes a
/// one-line summary to stderr. Called on deadline expiries and fatal
/// serving errors; cheap enough to call on any exceptional path.
void EmitFlightDump(const std::string& reason, uint64_t trace_id = 0);

/// The most recent EmitFlightDump rendering (empty before the first).
/// Tests assert the dump names the slow span through this.
std::string LastFlightDump();

}  // namespace obs
}  // namespace jinfer

#endif  // JINFER_OBS_TRACE_H_
