// Exposition (DESIGN.md §13.3): turns registry snapshots into the two
// formats the outside world reads — Prometheus-style text (the kMetrics
// frame payload, interactive_cli --metrics-dump) and compact histogram
// summaries (count/sum/p50/p99) for the versioned StatsOk body.

#ifndef JINFER_OBS_EXPOSITION_H_
#define JINFER_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace jinfer {
namespace obs {

/// One histogram, reduced to the numbers a dashboard plots. Quantiles use
/// HistogramSnapshot::Quantile — the same definition everywhere.
struct HistogramSummary {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Prometheus text exposition of a snapshot: counters and gauges as single
/// samples with a # TYPE header, histograms as cumulative _bucket{le=...}
/// series (only up to the highest populated bucket, then le="+Inf") plus
/// _sum, _count and p50/p90/p99 quantile samples.
std::string RenderPrometheusText(const std::vector<MetricSnapshot>& metrics);

/// RenderPrometheusText over the global registry.
std::string RenderPrometheusText();

/// Every histogram in the global registry, summarized. The StatsOk body
/// carries exactly this vector.
std::vector<HistogramSummary> SummarizeHistograms();

}  // namespace obs
}  // namespace jinfer

#endif  // JINFER_OBS_EXPOSITION_H_
