#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace jinfer {
namespace obs {

namespace internal {
std::atomic<uint32_t> g_metrics_enabled{1};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled ? 1 : 0,
                                    std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::BucketLower(size_t b) {
  if (b == 0) return 0;
  return uint64_t{1} << (b - 1);
}

uint64_t HistogramSnapshot::BucketUpper(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]: the ceil makes p100 the last sample and keeps p0
  // at the first, so quantiles of a single-bucket histogram stay inside
  // that bucket's bounds.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    const uint64_t n = buckets[b];
    if (n == 0) continue;
    if (rank <= cumulative + n) {
      const double lower = static_cast<double>(BucketLower(b));
      const double upper = static_cast<double>(BucketUpper(b));
      // Position of the rank among this bucket's own samples, in (0, 1].
      const double within = static_cast<double>(rank - cumulative) /
                            static_cast<double>(n);
      return lower + (upper - lower) * within;
    }
    cumulative += n;
  }
  return static_cast<double>(BucketUpper(kHistogramBuckets - 1));
}

struct Registry::Slot {
  std::string name;
  MetricKind kind;
  // Exactly one engaged, per kind. Separate members keep the metric types
  // copy-free and the slot trivially destroyable in registration order.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // Leaked: outlives all users.
  return *registry;
}

Registry::Slot& Registry::Resolve(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot->name == name) {
      JINFER_CHECK(slot->kind == kind,
                   "metric '%s' registered twice with different kinds",
                   slot->name.c_str());
      return *slot;
    }
  }
  auto slot = std::make_unique<Slot>();
  slot->name = std::string(name);
  slot->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      slot->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      slot->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      slot->histogram = std::make_unique<Histogram>();
      break;
  }
  slots_.push_back(std::move(slot));
  return *slots_.back();
}

Counter& Registry::counter(std::string_view name) {
  return *Resolve(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *Resolve(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *Resolve(name, MetricKind::kHistogram).histogram;
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    MetricSnapshot m;
    m.name = slot->name;
    m.kind = slot->kind;
    switch (slot->kind) {
      case MetricKind::kCounter:
        m.counter = slot->counter->Value();
        break;
      case MetricKind::kGauge:
        m.gauge = slot->gauge->Value();
        break;
      case MetricKind::kHistogram:
        m.histogram = slot->histogram->Snapshot();
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace obs
}  // namespace jinfer
