// Status: lightweight error propagation without exceptions, in the style of
// RocksDB's rocksdb::Status / Arrow's arrow::Status.
//
// Fallible public APIs return Status (or Result<T>, see result.h). Internal
// invariant violations use JINFER_CHECK (util/check.h) instead.

#ifndef JINFER_UTIL_STATUS_H_
#define JINFER_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace jinfer {
namespace util {

/// Error taxonomy for the whole library. Kept deliberately small; the
/// message string carries the details.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInconsistentSample = 5,  ///< User labels admit no consistent predicate.
  kCapacityExceeded = 6,    ///< e.g. |attrs(R)|*|attrs(P)| > kMaxOmegaBits.
  kIoError = 7,
  kParseError = 8,
  kUnimplemented = 9,
  kUnavailable = 10,        ///< Transient fault — safe to retry with backoff.
  kDeadlineExceeded = 11,   ///< The caller's deadline expired mid-operation.
  kResourceExhausted = 12,  ///< Shed under saturation — admit later, not now.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic status object. Ok statuses are cheap (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status InconsistentSample(std::string msg) {
    return Status(StatusCode::kInconsistentSample, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInconsistentSample() const {
    return code_ == StatusCode::kInconsistentSample;
  }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Maps a failed syscall's errno into the taxonomy: recoverable resource
/// pressure (EINTR, EAGAIN, EBUSY, ENOMEM, EMFILE, ENFILE) is kUnavailable
/// — the transient, retry-with-backoff class — ENOSPC/EDQUOT is
/// kResourceExhausted, and everything else (bad fd, EIO, permissions) is a
/// permanent kIoError. `msg` should already name the operation and path.
Status IoStatusFromErrno(int err, std::string msg);

}  // namespace util
}  // namespace jinfer

/// Propagates a non-OK Status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define JINFER_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::jinfer::util::Status _st = (expr);             \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // JINFER_UTIL_STATUS_H_
