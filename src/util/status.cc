#include "util/status.h"

#include <cerrno>

namespace jinfer {
namespace util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInconsistentSample:
      return "InconsistentSample";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status IoStatusFromErrno(int err, std::string msg) {
  switch (err) {
    case EINTR:
    case EAGAIN:
    case EBUSY:
    case ENOMEM:
    case EMFILE:
    case ENFILE:
      return Status::Unavailable(std::move(msg));
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::ResourceExhausted(std::move(msg));
    default:
      return Status::IoError(std::move(msg));
  }
}

}  // namespace util
}  // namespace jinfer
