#include "util/bit_vector.h"

namespace jinfer {
namespace util {

std::string BitVector::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachSetBit([&](size_t bit) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(bit);
  });
  out += '}';
  return out;
}

}  // namespace util
}  // namespace jinfer
