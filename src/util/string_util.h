// Small string helpers shared by CSV parsing and report printing.

#ifndef JINFER_UTIL_STRING_UTIL_H_
#define JINFER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace jinfer {
namespace util {

/// Splits `s` on `sep`; adjacent separators yield empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads or truncates `s` to exactly `width` characters (for tables).
std::string PadLeft(std::string s, size_t width);
std::string PadRight(std::string s, size_t width);

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_STRING_UTIL_H_
