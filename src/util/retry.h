// Retry with capped exponential backoff and deterministic seeded jitter
// (DESIGN.md §10).
//
// The error taxonomy splits failures into transient (kUnavailable — a flaky
// fsync, an exhausted fd table, an injected failpoint) and permanent
// (everything else: corrupt bytes are ParseError, bad input is
// InvalidArgument, a shed request is ResourceExhausted). Only transient
// failures are retried; retrying a permanent one just repeats the outcome,
// and retrying a shed amplifies exactly the overload that caused it.
//
// Backoff for attempt k (0-based) is base_backoff * 2^k, capped at
// max_backoff, then scaled by a jitter factor in [0.5, 1.0) drawn from an
// Rng seeded with `jitter_seed` — deterministic per policy instance, so
// tests replay byte-identical schedules while concurrent retriers with
// different seeds still decorrelate (no thundering herd on a shared
// dependency).
//
// Sleeping is injectable: tests pass a recording sleeper and run in
// microseconds; production uses the default std::this_thread sleeper.

#ifndef JINFER_UTIL_RETRY_H_
#define JINFER_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <type_traits>

#include "util/rng.h"
#include "util/status.h"

namespace jinfer {
namespace util {

/// True for the status class that retry/backoff may act on.
inline bool IsTransient(const Status& status) {
  return status.IsUnavailable();
}

struct RetryPolicy {
  /// Total tries including the first; <= 0 means unlimited (the caller is
  /// expected to bound the loop some other way — a deadline, a failpoint
  /// schedule that exhausts, an operator).
  int max_attempts = 3;

  std::chrono::microseconds base_backoff{1000};
  std::chrono::microseconds max_backoff{100000};

  /// Seed of the jitter stream; give concurrent retriers distinct seeds.
  uint64_t jitter_seed = 0x6a696e666572ULL;  // "jinfer"
};

/// The deterministic backoff schedule of a policy: Delay(k) for the k-th
/// retry (after the k+1-th failed attempt). Stateful because the jitter is
/// a stream: one Backoff instance per retried operation.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.jitter_seed) {}

  std::chrono::microseconds Next() {
    const int shift = attempt_ < 20 ? attempt_ : 20;  // 2^20 * base ≫ cap
    ++attempt_;
    auto raw = policy_.base_backoff * (1LL << shift);
    if (raw > policy_.max_backoff) raw = policy_.max_backoff;
    const double jitter = 0.5 + rng_.NextDouble() / 2.0;  // [0.5, 1.0)
    return std::chrono::microseconds(
        static_cast<int64_t>(static_cast<double>(raw.count()) * jitter));
  }

  int attempt() const { return attempt_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempt_ = 0;
};

using Sleeper = std::function<void(std::chrono::microseconds)>;

inline void RealSleep(std::chrono::microseconds d) {
  std::this_thread::sleep_for(d);
}

/// Runs `fn` (returning Status or Result<T>) until it succeeds, fails
/// permanently, or the policy's attempts exhaust. `retries`, when given,
/// accumulates the number of re-runs (for stats counters).
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, Fn&& fn,
               uint64_t* retries = nullptr, const Sleeper& sleep = RealSleep)
    -> decltype(fn()) {
  Backoff backoff(policy);
  while (true) {
    auto outcome = fn();
    Status status;
    if constexpr (std::is_same_v<decltype(outcome), Status>) {
      status = outcome;
    } else {
      status = outcome.status();
    }
    const bool out_of_attempts =
        policy.max_attempts > 0 && backoff.attempt() + 1 >= policy.max_attempts;
    if (status.ok() || !IsTransient(status) || out_of_attempts) {
      return outcome;
    }
    sleep(backoff.Next());
    if (retries != nullptr) ++*retries;
  }
}

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_RETRY_H_
