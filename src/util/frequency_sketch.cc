#include "util/frequency_sketch.h"

#include <bit>

#include "util/bitset.h"  // util::Mix64

namespace jinfer {
namespace util {

FrequencySketch::FrequencySketch(size_t counters_per_row) {
  if (counters_per_row < 16) counters_per_row = 16;
  counters_per_row = std::bit_ceil(counters_per_row);
  mask_ = counters_per_row - 1;
  window_ = 8 * static_cast<uint64_t>(counters_per_row);
  counters_.assign(kRows * counters_per_row, 0);
}

size_t FrequencySketch::CounterIndex(uint64_t key, size_t row) const {
  // Per-row independent derivation: re-mix the key with a row tweak so the
  // four probes land on uncorrelated counters.
  uint64_t h = Mix64(key + row * 0x9e3779b97f4a7c15ULL);
  return row * (mask_ + 1) + (static_cast<size_t>(h) & mask_);
}

void FrequencySketch::Increment(uint64_t key) {
  for (size_t row = 0; row < kRows; ++row) {
    uint8_t& c = counters_[CounterIndex(key, row)];
    if (c < kMaxCounter) ++c;
  }
  ++total_increments_;
  if (++since_aging_ >= window_) Age();
}

uint32_t FrequencySketch::Estimate(uint64_t key) const {
  uint32_t est = kMaxCounter;
  for (size_t row = 0; row < kRows; ++row) {
    uint32_t c = counters_[CounterIndex(key, row)];
    if (c < est) est = c;
  }
  return est;
}

void FrequencySketch::Age() {
  for (uint8_t& c : counters_) c >>= 1;
  since_aging_ = 0;
  ++agings_;
}

}  // namespace util
}  // namespace jinfer
