#include "util/stopwatch.h"

namespace jinfer {
namespace util {

namespace {

class SteadyMonotonicClock final : public MonotonicClock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

const MonotonicClock* SystemClock() {
  static const SteadyMonotonicClock clock;
  return &clock;
}

}  // namespace util
}  // namespace jinfer
