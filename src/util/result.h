// Result<T>: a value-or-Status holder, in the style of arrow::Result<T> /
// absl::StatusOr<T>. Prefer this over out-parameters for fallible factories.

#ifndef JINFER_UTIL_RESULT_H_
#define JINFER_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace jinfer {
namespace util {

/// Holds either a T or a non-OK Status.
///
/// Usage:
///   Result<Relation> r = Relation::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Aborts if given an OK status, since
  /// that would be a Result with neither value nor error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    JINFER_CHECK(!std::get<Status>(repr_).ok(),
                 "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status (OK when a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the held value; aborts when holding an error.
  const T& ValueOrDie() const& {
    JINFER_CHECK(ok(), "Result::ValueOrDie on error: %s",
                 std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    JINFER_CHECK(ok(), "Result::ValueOrDie on error: %s",
                 std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    JINFER_CHECK(ok(), "Result::ValueOrDie on error: %s",
                 std::get<Status>(repr_).ToString().c_str());
    return std::move(std::get<T>(repr_));
  }

  /// Accessor aliases matching arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace util
}  // namespace jinfer

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` may include a declaration, e.g.
///   JINFER_ASSIGN_OR_RETURN(auto rel, Relation::FromCsv(path));
#define JINFER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define JINFER_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define JINFER_ASSIGN_OR_RETURN_NAME(a, b) JINFER_ASSIGN_OR_RETURN_CONCAT(a, b)

#define JINFER_ASSIGN_OR_RETURN(lhs, expr) \
  JINFER_ASSIGN_OR_RETURN_IMPL(            \
      JINFER_ASSIGN_OR_RETURN_NAME(_jinfer_result_, __LINE__), lhs, expr)

#endif  // JINFER_UTIL_RESULT_H_
