#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace jinfer {
namespace util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  const char* ws = " \t\r\n";
  size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  s.append(width - s.size(), ' ');
  return s;
}

}  // namespace util
}  // namespace jinfer
