// Stopwatch: monotonic wall-clock timer used by the experiment harness —
// plus the MonotonicClock seam the observability layer (src/obs/) times
// through, so tests can substitute a FakeClock for the steady clock
// anywhere a duration decision matters (idle reaping, failure backoff,
// span timing).

#ifndef JINFER_UTIL_STOPWATCH_H_
#define JINFER_UTIL_STOPWATCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace jinfer {
namespace util {

/// A monotonic nanosecond clock. The process clock (SystemClock) reads
/// std::chrono::steady_clock; tests inject a FakeClock to make time a
/// controlled input instead of an environmental one. Implementations must
/// be thread-safe and non-decreasing.
class MonotonicClock {
 public:
  virtual ~MonotonicClock() = default;

  /// Nanoseconds since an arbitrary (per-clock) epoch. Never decreases.
  virtual uint64_t NowNanos() const = 0;
};

/// The process-wide steady_clock-backed instance. Never null.
const MonotonicClock* SystemClock();

/// A hand-cranked clock for tests: time advances only when told to, so
/// idle-reap windows, backoff expiries and span durations become exact
/// assertions instead of sleeps.
class FakeClock final : public MonotonicClock {
 public:
  explicit FakeClock(uint64_t start_nanos = 0) : nanos_(start_nanos) {}

  uint64_t NowNanos() const override {
    return nanos_.load(std::memory_order_relaxed);
  }

  void AdvanceNanos(uint64_t delta) {
    nanos_.fetch_add(delta, std::memory_order_relaxed);
  }

  void Advance(std::chrono::nanoseconds delta) {
    AdvanceNanos(static_cast<uint64_t>(delta.count()));
  }

 private:
  std::atomic<uint64_t> nanos_;
};

class Stopwatch {
 public:
  /// Times against the steady clock directly (no virtual dispatch — the
  /// hot-path default every existing call site keeps).
  Stopwatch() : clock_(nullptr), start_nanos_(SteadyNanos()) {}

  /// Times against an injected clock (nullptr falls back to the steady
  /// clock). The obs layer threads this through so fake-clock tests can
  /// freeze or crank span timing.
  explicit Stopwatch(const MonotonicClock* clock)
      : clock_(clock), start_nanos_(Now()) {}

  /// Restarts the timer.
  void Reset() { start_nanos_ = Now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Elapsed time in whole nanoseconds.
  uint64_t ElapsedNanos() const {
    const uint64_t now = Now();
    return now > start_nanos_ ? now - start_nanos_ : 0;
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return static_cast<int64_t>(ElapsedNanos() / 1000);
  }

  /// The start instant, in the clock's own nanosecond epoch — what a span
  /// record stores so a timeline can be reconstructed without a second
  /// clock read.
  uint64_t StartNanos() const { return start_nanos_; }

 private:
  static uint64_t SteadyNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  uint64_t Now() const {
    return clock_ != nullptr ? clock_->NowNanos() : SteadyNanos();
  }

  const MonotonicClock* clock_;
  uint64_t start_nanos_;
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_STOPWATCH_H_
