// Stopwatch: monotonic wall-clock timer used by the experiment harness.

#ifndef JINFER_UTIL_STOPWATCH_H_
#define JINFER_UTIL_STOPWATCH_H_

#include <chrono>

namespace jinfer {
namespace util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_STOPWATCH_H_
