// Deterministic 64-bit RNG (xoshiro256** seeded via SplitMix64).
//
// Every randomized component of the library (RND strategy, workload
// generators, random CNF) takes an explicit seed so experiments are exactly
// reproducible; std::mt19937 is avoided because its distributions are not
// specified identically across standard libraries.

#ifndef JINFER_UTIL_RNG_H_
#define JINFER_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace jinfer {
namespace util {

class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams on all
  /// platforms.
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state, per the
    // reference implementation recommendation.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be positive. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound) {
    JINFER_CHECK(bound > 0, "NextBelow(0)");
    uint64_t threshold = -bound % bound;  // 2^64 mod bound
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    JINFER_CHECK(lo <= hi, "NextInRange(%lld, %lld)",
                 static_cast<long long>(lo), static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(span == 0 ? Next() : NextBelow(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_RNG_H_
