// Checksum64: a fast streaming 64-bit integrity checksum in the XXH
// family of non-cryptographic word-at-a-time hashes, built on the
// library's shared Mix64 finalizer.
//
// Used by the persistent index store (src/store/) to detect torn writes,
// truncation and bit rot: the checksum of every file byte up to the
// footer is stored in the footer and re-verified on load. It detects
// corruption; it does not authenticate (an attacker who can rewrite the
// file can rewrite the footer).
//
// The digest is a pure function of the byte stream — chunk boundaries
// between Absorb calls do not change the result — and is deterministic
// across runs and platforms of equal endianness (words are read with
// memcpy in native byte order, matching the little-endian file format
// it guards).

#ifndef JINFER_UTIL_CHECKSUM_H_
#define JINFER_UTIL_CHECKSUM_H_

#include <cstdint>
#include <cstring>

#include "util/bitset.h"  // util::Mix64

namespace jinfer {
namespace util {

class Checksum64 {
 public:
  Checksum64() = default;

  /// Absorbs `len` bytes. Splitting a stream across calls at any boundary
  /// yields the same digest as one call: full 8-byte words are folded as
  /// they complete, and partial words wait in a carry buffer.
  void Absorb(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total_ += len;
    if (carry_len_ > 0) {
      while (len > 0 && carry_len_ < 8) {
        carry_[carry_len_++] = *p++;
        --len;
      }
      if (carry_len_ == 8) {
        FoldWord(carry_);
        carry_len_ = 0;
      }
    }
    while (len >= 8) {
      FoldWord(p);
      p += 8;
      len -= 8;
    }
    while (len > 0) {
      carry_[carry_len_++] = *p++;
      --len;
    }
  }

  /// Digest of everything absorbed so far (the tail is zero-padded and the
  /// total length folded in, so "abc" and "abc\0" differ). Does not
  /// consume the state: more Absorb calls may follow.
  uint64_t Finish() const {
    uint64_t h = state_;
    if (carry_len_ > 0) {
      unsigned char tail[8] = {0};
      std::memcpy(tail, carry_, carry_len_);
      uint64_t word;
      std::memcpy(&word, tail, 8);
      h = Mix64(word + h);
    }
    return Mix64(total_ ^ h);
  }

 private:
  void FoldWord(const unsigned char* p) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    state_ = Mix64(word + state_);
  }

  uint64_t state_ = 0xa4093822299f31d0ULL;  // pi digits, like Hasher128.
  uint64_t total_ = 0;
  unsigned char carry_[8] = {0};
  size_t carry_len_ = 0;
};

/// One-shot convenience over a contiguous buffer.
inline uint64_t Checksum64Of(const void* data, size_t len) {
  Checksum64 c;
  c.Absorb(data, len);
  return c.Finish();
}

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_CHECKSUM_H_
