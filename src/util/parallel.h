// Minimal fork-join parallelism for the build-time hot paths.
//
// ParallelFor partitions [0, n) into one contiguous chunk per worker and
// runs `fn(begin, end, worker)` on worker-private std::threads (worker 0
// runs inline on the calling thread, so a 1-thread call never spawns).
// Chunks are contiguous and in index order, which lets callers that
// accumulate worker-private results merge them back deterministically:
// concatenating per-worker output in worker order reproduces the serial
// iteration order exactly.
//
// This is deliberately not a task scheduler: the call sites (signature-index
// construction, maximality sweep) are embarrassingly parallel loops over
// balanced work items, so static chunking wins over work stealing and keeps
// the header dependency-free.

#ifndef JINFER_UTIL_PARALLEL_H_
#define JINFER_UTIL_PARALLEL_H_

#include <cstddef>
#include <thread>
#include <vector>

#include "util/check.h"

namespace jinfer {
namespace util {

/// Resolves a user-facing thread-count option: values >= 1 are taken as-is;
/// 0 (and negatives) mean "one per hardware thread". Always returns >= 1.
inline size_t ResolveThreadCount(int threads) {
  if (threads >= 1) return static_cast<size_t>(threads);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Runs `fn(begin, end, worker)` over a static partition of [0, n) into at
/// most `threads` contiguous chunks. Worker w handles the w-th chunk;
/// workers with an empty range are not invoked and their threads are not
/// spawned. Blocks until every worker has finished.
///
/// `fn` must not throw (the library reports invariant violations through
/// JINFER_CHECK/abort, never exceptions). Workers may write to shared state
/// only at disjoint indices.
template <typename Fn>
void ParallelFor(size_t n, size_t threads, Fn&& fn) {
  JINFER_CHECK(threads >= 1, "ParallelFor with %zu threads", threads);
  if (n == 0) return;
  size_t workers = threads < n ? threads : n;
  if (workers == 1) {
    fn(size_t{0}, n, size_t{0});
    return;
  }
  // Split as evenly as possible: the first `extra` chunks get one more item.
  size_t base = n / workers;
  size_t extra = n % workers;
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  size_t begin = base + (extra > 0 ? 1 : 0);  // Chunk 0 runs inline below.
  for (size_t w = 1; w < workers; ++w) {
    size_t len = base + (w < extra ? 1 : 0);
    size_t end = begin + len;
    pool.emplace_back([&fn, begin, end, w] { fn(begin, end, w); });
    begin = end;
  }
  fn(size_t{0}, base + (extra > 0 ? 1 : 0), size_t{0});
  for (auto& t : pool) t.join();
}

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_PARALLEL_H_
