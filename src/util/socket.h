// Minimal RAII socket layer for the serving front end (DESIGN.md §11).
//
// Everything here is a thin, errno-honest wrapper over POSIX sockets:
// failures surface through the library's error taxonomy via
// util::IoStatusFromErrno, so resource pressure (EMFILE, ENFILE, ENOMEM,
// EAGAIN on a blocking call that timed out) classifies as kUnavailable —
// the transient, retry-with-backoff class — while genuine I/O breakage
// (ECONNRESET, EPIPE, bad fd) stays a permanent kIoError. The server's
// connection lifecycle logic (src/server/) is written entirely against
// these Status values; it never inspects errno itself.
//
// Socket owns the fd (move-only, closed on destruction). The nonblocking
// helpers return how much was transferred and kUnavailable for
// EAGAIN/EWOULDBLOCK, which the poll loop treats as "try again when poll
// says so". WakePipe is the self-pipe that lets signal handlers and worker
// threads interrupt a poll() sleep: Notify() is a single write(), which is
// async-signal-safe, so a SIGTERM handler may call it directly.

#ifndef JINFER_UTIL_SOCKET_H_
#define JINFER_UTIL_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace jinfer {
namespace util {

/// Move-only owner of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the fd now (idempotent).
  void Close();

  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A parsed "host:port" endpoint. Parse fails on a missing/garbage port.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Creates a nonblocking listening TCP socket bound to host:port
/// (SO_REUSEADDR set; port 0 binds an ephemeral port — read it back with
/// BoundPort). IPv4 only: the serving front end binds loopback or an
/// explicit address, it is not a name resolver.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog = 128);

/// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> BoundPort(const Socket& socket);

/// Accepts one pending connection as a nonblocking socket. kUnavailable
/// when no connection is pending (EAGAIN) — poll again.
Result<Socket> AcceptTcp(const Socket& listener);

/// Blocking client connect to host:port (IPv4 dotted quad or "localhost").
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Sets the whole-call timeout of a *blocking* socket's recv/send
/// (SO_RCVTIMEO / SO_SNDTIMEO); a timed-out call reports kUnavailable.
/// Zero clears the timeout. Used by the thin client; the server side is
/// nonblocking and enforces deadlines in its poll loop instead.
Status SetIoTimeout(const Socket& socket, std::chrono::milliseconds timeout);

/// Nonblocking read into `buf`. Returns bytes read (> 0), 0 for orderly
/// EOF, kUnavailable for "no data yet", and kIoError for a broken
/// connection (ECONNRESET and friends).
Result<size_t> ReadSome(const Socket& socket, std::span<uint8_t> buf);

/// Nonblocking write of a prefix of `buf`. Returns bytes written (possibly
/// 0 only when buf is empty), kUnavailable for a full kernel buffer, and
/// kIoError for a broken connection. SIGPIPE is suppressed (MSG_NOSIGNAL).
Result<size_t> WriteSome(const Socket& socket, std::span<const uint8_t> buf);

/// Blocking-exact helpers for the client side: read/write the full span or
/// fail (kUnavailable on a SetIoTimeout expiry, kIoError on EOF/breakage).
Status ReadExact(const Socket& socket, std::span<uint8_t> buf);
Status WriteAll(const Socket& socket, std::span<const uint8_t> buf);

/// Self-pipe: lets any thread (or a signal handler) wake a poll() loop.
class WakePipe {
 public:
  /// Creates the pipe; aborts on resource exhaustion (a server that cannot
  /// make a pipe cannot run at all).
  WakePipe();

  /// Async-signal-safe: one write() on the write end. Coalesces naturally
  /// (the read end drains everything).
  void Notify();

  /// Drains pending notifications (nonblocking).
  void Drain();

  int read_fd() const { return read_end_.fd(); }

 private:
  Socket read_end_;
  Socket write_end_;
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_SOCKET_H_
