// BitVector: a dynamic multi-word bitset for universes larger than
// SmallBitset's 256-bit capacity, plus the word-at-a-time kernels
// (util::kernels) shared between it and the packed columnar sweep arrays
// in core::InferenceState (DESIGN.md §12).
//
// Where SmallBitset is the fixed-capacity value type pinned into the
// persistent class-table format, BitVector grows on demand: Set(bit)
// extends the word array, so a universe over 256 atoms routes here instead
// of tripping SmallBitset's capacity check. The representation is
// normalized — the highest word is never zero — which makes equality,
// ordering and hashing independent of how much capacity a value happened
// to pass through (property-checked against a std::vector<bool> model in
// tests/util/bitset_fuzz_test.cc).
//
// The mutation kernels (And/Or/AndNot) are deliberately plain counted
// loops over uint64_t spans: with a constant or small runtime bound the
// compiler unrolls and auto-vectorizes them, and they are memory-bound
// anyway. Branch-free accumulator forms are used for the predicates
// (subset, equality) so the loop body carries no early-out dependence —
// at the W ≤ 8 word counts the class sweeps run at, the saved branch
// mispredicts outweigh the skipped words. At kSimdMinWords and above the
// predicate and popcount kernels indirect through the runtime-dispatched
// SIMD backends (util/simd/dispatch.h, DESIGN.md §12.4); below it the
// call-site loop with its small constant bound beats a function-pointer
// call into a vector prologue.

#ifndef JINFER_UTIL_BIT_VECTOR_H_
#define JINFER_UTIL_BIT_VECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"
#include "util/simd/dispatch.h"

namespace jinfer {
namespace util {

namespace kernels {

/// Word count at which the span predicates hand off to the dispatched
/// SIMD backends: a full vector of words (AVX-512) so the call overhead
/// amortizes; below it the inline loop wins.
inline constexpr size_t kSimdMinWords = 8;

/// dst[w] &= src[w].
inline void AndWords(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] &= src[w];
}

/// dst[w] = a[w] & b[w].
inline void And2Words(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                      size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] = a[w] & b[w];
}

/// dst[w] |= src[w].
inline void OrWords(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

/// dst[w] &= ~src[w] (set difference).
inline void AndNotWords(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] &= ~src[w];
}

/// True iff a ⊆ b over `words` words. Branch-free accumulator form.
inline bool IsSubsetWords(const uint64_t* a, const uint64_t* b, size_t words) {
  if (words >= kSimdMinWords) {
    return simd::ActiveKernelOps().is_subset_words(a, b, words);
  }
  uint64_t stray = 0;
  for (size_t w = 0; w < words; ++w) stray |= a[w] & ~b[w];
  return stray == 0;
}

/// True iff a == b over `words` words.
inline bool EqualWords(const uint64_t* a, const uint64_t* b, size_t words) {
  if (words >= kSimdMinWords) {
    return simd::ActiveKernelOps().equal_words(a, b, words);
  }
  uint64_t diff = 0;
  for (size_t w = 0; w < words; ++w) diff |= a[w] ^ b[w];
  return diff == 0;
}

/// True iff a ∩ b ≠ ∅ over `words` words.
inline bool IntersectsWords(const uint64_t* a, const uint64_t* b,
                            size_t words) {
  if (words >= kSimdMinWords) {
    return simd::ActiveKernelOps().intersects_words(a, b, words);
  }
  uint64_t common = 0;
  for (size_t w = 0; w < words; ++w) common |= a[w] & b[w];
  return common != 0;
}

/// Σ popcount(a[w]).
inline size_t PopcountWords(const uint64_t* a, size_t words) {
  if (words >= kSimdMinWords) {
    return simd::ActiveKernelOps().popcount_words(a, words);
  }
  size_t c = 0;
  for (size_t w = 0; w < words; ++w) {
    c += static_cast<size_t>(std::popcount(a[w]));
  }
  return c;
}

/// True iff key ⊆ witnesses[k] for some k, where `witnesses` is a flat
/// array of `num` stride-`words` rows — Lemma 3.4 against every negative
/// witness, the inner predicate of the certainty sweeps.
inline bool AnyWitnessContains(const uint64_t* key, const uint64_t* witnesses,
                               size_t num, size_t words) {
  for (size_t k = 0; k < num; ++k) {
    if (IsSubsetWords(key, witnesses + k * words, words)) return true;
  }
  return false;
}

/// Mix64-chain hash over `words` words; matches SmallBitset::HashPrefix for
/// equal word counts, so a container can mix prefix-hashed keys of either
/// type as long as it is consistent about the width.
inline uint64_t HashWords(const uint64_t* a, size_t words) {
  if (words == 1) return Mix64(a[0]);
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t w = 0; w < words; ++w) h = Mix64(a[w] + h);
  return h;
}

}  // namespace kernels

class BitVector {
 public:
  /// "No such bit" sentinel for the search operations.
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  /// Constructs the empty set with capacity for bits [0, nbits) (rounded up
  /// to whole words; zero words for nbits == 0). Capacity is a reservation
  /// only — Set() grows past it on demand.
  explicit BitVector(size_t nbits = 0) : words_(WordsFor(nbits), 0) {}

  /// Number of 64-bit words covering bit indices [0, nbits); 0 for empty.
  static constexpr size_t WordsFor(size_t nbits) { return (nbits + 63) / 64; }

  /// A vector with bits [0, n) set.
  static BitVector AllSet(size_t n) {
    BitVector b(n);
    size_t full = n / 64;
    for (size_t w = 0; w < full; ++w) b.words_[w] = ~uint64_t{0};
    if (n % 64 != 0) b.words_[full] = (uint64_t{1} << (n % 64)) - 1;
    b.Trim();
    return b;
  }

  /// The singleton {bit}.
  static BitVector Singleton(size_t bit) {
    BitVector b;
    b.Set(bit);
    return b;
  }

  /// Widens a SmallBitset (bits [0, nbits) of it) into a BitVector.
  static BitVector FromSmall(const SmallBitset& s, size_t nbits) {
    JINFER_CHECK(nbits <= SmallBitset::kMaxBits,
                 "FromSmall(%zu) exceeds SmallBitset capacity", nbits);
    BitVector b(nbits);
    for (size_t w = 0; w < b.words_.size(); ++w) b.words_[w] = s.word(w);
    b.Trim();
    return b;
  }

  /// Narrows to a SmallBitset; the value must fit its 256-bit capacity.
  SmallBitset ToSmall() const {
    JINFER_CHECK(words_.size() <= SmallBitset::kWords,
                 "BitVector with %zu words exceeds SmallBitset capacity",
                 words_.size());
    SmallBitset s;
    ForEachSetBit([&](size_t bit) { s.Set(bit); });
    return s;
  }

  /// Sets a bit, growing the word array as needed — the dynamic analogue
  /// of SmallBitset::Set, which JINFER_DCHECKs its fixed capacity instead.
  void Set(size_t bit) {
    size_t w = bit / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= uint64_t{1} << (bit % 64);
  }

  /// Clears a bit; bits beyond the current capacity are already clear.
  void Reset(size_t bit) {
    size_t w = bit / 64;
    if (w >= words_.size()) return;
    words_[w] &= ~(uint64_t{1} << (bit % 64));
  }

  /// Reads a bit; bits beyond the current capacity read as 0.
  bool Test(size_t bit) const {
    size_t w = bit / 64;
    return w < words_.size() && ((words_[w] >> (bit % 64)) & 1) != 0;
  }

  bool Empty() const {
    uint64_t any = 0;
    for (uint64_t w : words_) any |= w;
    return any == 0;
  }

  size_t Count() const {
    return kernels::PopcountWords(words_.data(), words_.size());
  }

  /// Current capacity in bits (a multiple of 64). Semantically the value
  /// extends with zeros beyond this; comparisons ignore capacity.
  size_t capacity_bits() const { return words_.size() * 64; }

  size_t num_words() const { return words_.size(); }
  std::span<const uint64_t> words() const { return words_; }
  const uint64_t* data() const { return words_.data(); }

  /// The i-th word; words beyond the capacity read as 0.
  uint64_t word(size_t i) const { return i < words_.size() ? words_[i] : 0; }

  bool IsSubsetOf(const BitVector& other) const {
    const size_t common =
        words_.size() < other.words_.size() ? words_.size()
                                            : other.words_.size();
    if (!kernels::IsSubsetWords(words_.data(), other.words_.data(), common)) {
      return false;
    }
    for (size_t w = common; w < words_.size(); ++w) {
      if (words_[w] != 0) return false;
    }
    return true;
  }

  bool IsStrictSubsetOf(const BitVector& other) const {
    return IsSubsetOf(other) && *this != other;
  }

  bool Intersects(const BitVector& other) const {
    const size_t common =
        words_.size() < other.words_.size() ? words_.size()
                                            : other.words_.size();
    return kernels::IntersectsWords(words_.data(), other.words_.data(),
                                    common);
  }

  BitVector operator&(const BitVector& o) const {
    const size_t common =
        words_.size() < o.words_.size() ? words_.size() : o.words_.size();
    BitVector r(common * 64);
    kernels::And2Words(r.words_.data(), words_.data(), o.words_.data(),
                       common);
    r.Trim();
    return r;
  }
  BitVector operator|(const BitVector& o) const {
    const BitVector& big = words_.size() >= o.words_.size() ? *this : o;
    const BitVector& small = words_.size() >= o.words_.size() ? o : *this;
    BitVector r = big;
    kernels::OrWords(r.words_.data(), small.words_.data(),
                     small.words_.size());
    r.Trim();
    return r;
  }
  BitVector operator^(const BitVector& o) const {
    const BitVector& big = words_.size() >= o.words_.size() ? *this : o;
    const BitVector& small = words_.size() >= o.words_.size() ? o : *this;
    BitVector r = big;
    for (size_t w = 0; w < small.words_.size(); ++w) {
      r.words_[w] ^= small.words_[w];
    }
    r.Trim();
    return r;
  }
  /// Set difference: bits in *this but not in `o`.
  BitVector operator-(const BitVector& o) const {
    BitVector r = *this;
    const size_t common =
        words_.size() < o.words_.size() ? words_.size() : o.words_.size();
    kernels::AndNotWords(r.words_.data(), o.words_.data(), common);
    r.Trim();
    return r;
  }
  BitVector& operator&=(const BitVector& o) {
    if (o.words_.size() < words_.size()) words_.resize(o.words_.size());
    kernels::AndWords(words_.data(), o.words_.data(), words_.size());
    Trim();
    return *this;
  }
  BitVector& operator|=(const BitVector& o) {
    if (o.words_.size() > words_.size()) words_.resize(o.words_.size(), 0);
    kernels::OrWords(words_.data(), o.words_.data(), o.words_.size());
    return *this;
  }

  /// Equality of the represented sets (capacity-independent).
  friend bool operator==(const BitVector& a, const BitVector& b) {
    const BitVector& big = a.words_.size() >= b.words_.size() ? a : b;
    const BitVector& small = a.words_.size() >= b.words_.size() ? b : a;
    if (!kernels::EqualWords(big.words_.data(), small.words_.data(),
                             small.words_.size())) {
      return false;
    }
    for (size_t w = small.words_.size(); w < big.words_.size(); ++w) {
      if (big.words_[w] != 0) return false;
    }
    return true;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }

  /// Same order as SmallBitset: lexicographic from the highest word down,
  /// capacity-independent (the set with the highest distinct bit is
  /// greater).
  friend bool operator<(const BitVector& a, const BitVector& b) {
    const size_t words =
        a.words_.size() > b.words_.size() ? a.words_.size() : b.words_.size();
    for (size_t w = words; w-- > 0;) {
      const uint64_t aw = a.word(w);
      const uint64_t bw = b.word(w);
      if (aw != bw) return aw < bw;
    }
    return false;
  }

  /// Index of the lowest set bit; kNpos when empty.
  size_t FirstSetBit() const { return NextSetBit(0); }

  /// Index of the lowest set bit >= `from`; kNpos when none.
  size_t NextSetBit(size_t from) const {
    size_t w = from / 64;
    if (w >= words_.size()) return kNpos;
    uint64_t masked = words_[w] & (~uint64_t{0} << (from % 64));
    while (true) {
      if (masked != 0) {
        return w * 64 + static_cast<size_t>(std::countr_zero(masked));
      }
      if (++w == words_.size()) return kNpos;
      masked = words_[w];
    }
  }

  /// Calls fn(bit) for every set bit, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        fn(w * 64 + static_cast<size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  /// Capacity-independent hash, consistent with operator== (trailing zero
  /// words do not contribute).
  size_t Hash() const {
    size_t words = words_.size();
    while (words > 0 && words_[words - 1] == 0) --words;
    if (words == 0) return static_cast<size_t>(Mix64(0));
    return static_cast<size_t>(kernels::HashWords(words_.data(), words));
  }

  /// Debug string, e.g. "{0,3,257}".
  std::string ToString() const;

 private:
  /// Drops trailing zero words after a shrinking operation so word counts
  /// stay close to the value's true extent. Comparisons and Hash() are
  /// written to be capacity-independent regardless — Set/Reset leave
  /// trailing zeros in place and everything still agrees.
  void Trim() {
    while (!words_.empty() && words_.back() == 0) words_.pop_back();
  }

  std::vector<uint64_t> words_;
};

struct BitVectorHash {
  size_t operator()(const BitVector& b) const { return b.Hash(); }
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_BIT_VECTOR_H_
