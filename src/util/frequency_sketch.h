// FrequencySketch: a count-min sketch of access frequencies with periodic
// aging, in the TinyLFU style (cf. the EvolvingSketch line of work).
//
// The runtime's IndexCache uses it to decide cache residency under a
// capacity bound: every lookup increments the requested fingerprint, and
// when the cache is full a newcomer is admitted only if its estimated
// frequency beats the coldest resident's. The sketch is O(1) per access
// and fixed-size, so it remembers the popularity of *evicted* (and
// never-admitted) keys — the property a plain per-entry counter cannot
// provide, and the reason a one-hit-wonder scan cannot flush the hot set.
//
// Mechanics: kRows rows of 8-bit saturating counters; a key increments one
// counter per row (independently derived indices) and its estimate is the
// row-wise minimum, which only ever over-counts. After `window` increments
// every counter is halved — frequencies decay, so the sketch tracks recent
// popularity rather than all-time counts and saturation never becomes
// permanent.
//
// Not thread-safe; callers (IndexCache) serialize access under their own
// lock. Deterministic: the state is a pure function of the increment
// sequence.

#ifndef JINFER_UTIL_FREQUENCY_SKETCH_H_
#define JINFER_UTIL_FREQUENCY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jinfer {
namespace util {

class FrequencySketch {
 public:
  /// `counters_per_row` is rounded up to a power of two; sized ~16x the
  /// expected number of hot keys to keep collision over-counting rare.
  /// The aging window is 8 * counters_per_row increments.
  explicit FrequencySketch(size_t counters_per_row = 1024);

  /// Records one access of `key` (a pre-mixed 64-bit hash).
  void Increment(uint64_t key);

  /// Estimated access count of `key` since roughly the last aging window;
  /// never under-counts relative to the decayed truth.
  uint32_t Estimate(uint64_t key) const;

  /// Total increments recorded (monotonic; not decayed). Exposed for tests.
  uint64_t total_increments() const { return total_increments_; }

  /// Number of halving passes performed so far. Exposed for tests.
  uint64_t agings() const { return agings_; }

 private:
  static constexpr size_t kRows = 4;
  static constexpr uint8_t kMaxCounter = 255;

  size_t CounterIndex(uint64_t key, size_t row) const;
  void Age();

  size_t mask_;            // counters_per_row - 1
  uint64_t window_;        // increments between halvings
  uint64_t since_aging_ = 0;
  uint64_t total_increments_ = 0;
  uint64_t agings_ = 0;
  std::vector<uint8_t> counters_;  // kRows rows, row-major
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_FREQUENCY_SKETCH_H_
