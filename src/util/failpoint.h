// Failpoints: named fault-injection sites with deterministic triggers, for
// chaos-testing the failure domains of the store / cache / session runtime
// (DESIGN.md §10).
//
// An instrumented site calls FailpointHit("store.put.fsync") at the exact
// place a real fault would surface and treats a non-OK return like the real
// error (same cleanup, same classification). Sites cost ONE relaxed atomic
// load when nothing is armed — the global armed counter — so production
// binaries pay no measurable overhead (BM_FailpointDisarmed pins this).
//
// Trigger modes (armed per name, via API or the JINFER_FAILPOINTS env var):
//   count:N     the next N hits fail, then the point exhausts itself
//   every:N     hits N, 2N, 3N, ... fail — a periodic transient fault
//   prob:P[:S]  each hit fails independently with probability P, drawn
//               from a per-point xoshiro stream seeded with S (default 1) —
//               randomized but exactly reproducible
//   sleep:MS    the hit *delays* MS milliseconds and then succeeds — slow
//               I/O rather than failed I/O (exercises deadlines/backoff)
//
// Env spec: `JINFER_FAILPOINTS="name=mode;name=mode"` (';' or ',' between
// entries), parsed once at process start. Injected failures carry
// StatusCode::kUnavailable — the transient class — so retry/backoff layers
// see exactly what a flaky disk or exhausted fd table would produce.
//
// Registered names (grep for FailpointHit to verify the list):
//   store.put.fsync    fsync of the temp file in IndexStore::Put
//   store.put.rename   the atomic rename publishing the file
//   store.put.dirsync  the directory fsync journaling the rename
//   store.load.mmap    mapping a stored index in IndexStore::Load
//   cache.build        a SignatureIndex build inside IndexCache
//   manager.step       the SessionManager worker claiming a slice
//   server.accept      the listener accepting a connection (server::Server)
//   server.conn.read   a readable connection about to recv()
//   server.conn.write  a writable connection about to send()
//   server.frame.decode a complete frame about to be decoded
//
// Thread-safe: arming/disarming and hits may race freely; the registry
// mutex serializes trigger evaluation (hit order across threads is the only
// nondeterminism, the same one real faults have).

#ifndef JINFER_UTIL_FAILPOINT_H_
#define JINFER_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace jinfer {
namespace util {

namespace failpoint_internal {
/// Count of armed failpoints (sleep points included). Nonzero routes hits
/// to the slow path; zero is the production steady state.
extern std::atomic<uint32_t> g_armed;

/// Full evaluation: look the name up, apply its trigger, update stats.
Status HitSlow(const char* name);
}  // namespace failpoint_internal

/// True iff any failpoint is armed (relaxed; the disarmed fast path).
inline bool FailpointsArmed() {
  return failpoint_internal::g_armed.load(std::memory_order_relaxed) != 0;
}

/// The instrumented-site entry point. OK when disarmed or untriggered;
/// kUnavailable ("injected fault at <name>") when the trigger fires. A
/// sleep-mode point delays and returns OK.
inline Status FailpointHit(const char* name) {
  if (!FailpointsArmed()) return Status::OK();
  return failpoint_internal::HitSlow(name);
}

/// Per-point observability for tests and benches.
struct FailpointStats {
  uint64_t hits = 0;   ///< Times an armed site evaluated this point.
  uint64_t trips = 0;  ///< Hits that injected a fault (or slept).
};

class Failpoints {
 public:
  /// Parses and arms a spec ("name=count:2;other=prob:0.1:42"). Entries
  /// are additive; re-arming a name replaces its mode and resets its
  /// counters. InvalidArgument on a malformed entry (nothing from that
  /// entry onward is armed).
  static Status ArmFromSpec(std::string_view spec);

  /// Single-point arming, same mode grammar as the spec ("count:3").
  static Status Arm(const std::string& name, const std::string& mode);

  static void Disarm(const std::string& name);

  /// Disarms everything, including points armed from JINFER_FAILPOINTS.
  static void Reset();

  /// Stats for a point (zeros when never armed).
  static FailpointStats Stats(const std::string& name);

  /// RAII suspension: while any instance lives, armed points evaluate to
  /// OK (hits still counted). Lets a chaos test compute its fault-free
  /// baseline inside a process whose env schedule stays armed.
  class PauseScope {
   public:
    PauseScope();
    ~PauseScope();
    PauseScope(const PauseScope&) = delete;
    PauseScope& operator=(const PauseScope&) = delete;
  };
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_FAILPOINT_H_
