// SmallBitset: a fixed-capacity (256-bit) bitset with the set-algebra
// operations the inference core needs: subset tests, intersection, union,
// popcount, iteration over set bits, and hashing.
//
// 256 bits covers Omega = attrs(R) x attrs(P) for tables of up to 16x16
// attributes (e.g. TPC-H Lineitem(16) x Part(9)). The capacity is pinned by
// the store format (SignatureClass embeds the four words directly), so it
// cannot grow; larger universes use util::BitVector (bit_vector.h) instead.
// Per-bit capacity violations abort via JINFER_DCHECK — always-on in the
// Debug builds the sanitizer/chaos/TSan CI jobs run, compiled out of the
// Release hot loops. Bulk entry points (AllSet, word) keep full-time checks.

#ifndef JINFER_UTIL_BITSET_H_
#define JINFER_UTIL_BITSET_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "util/check.h"

namespace jinfer {
namespace util {

/// SplitMix64-style finalizer shared by every hash in the library (bitset
/// hashing, row hashing in the index build): mixes one word into a running
/// state. Chain as h = Mix64(w + h).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class SmallBitset {
 public:
  static constexpr size_t kMaxBits = 256;
  static constexpr size_t kWords = kMaxBits / 64;

  /// Constructs the empty set.
  constexpr SmallBitset() : words_{0, 0, 0, 0} {}

  /// Returns a bitset with bits [0, n) set.
  static SmallBitset AllSet(size_t n) {
    JINFER_CHECK(n <= kMaxBits, "AllSet(%zu) exceeds capacity %zu", n,
                 kMaxBits);
    SmallBitset b;
    size_t full = n / 64;
    for (size_t w = 0; w < full; ++w) b.words_[w] = ~uint64_t{0};
    if (n % 64 != 0) b.words_[full] = (uint64_t{1} << (n % 64)) - 1;
    return b;
  }

  /// Returns a singleton {bit}.
  static SmallBitset Singleton(size_t bit) {
    SmallBitset b;
    b.Set(bit);
    return b;
  }

  void Set(size_t bit) {
    JINFER_DCHECK(bit < kMaxBits, "Set(%zu) out of range", bit);
    words_[bit / 64] |= uint64_t{1} << (bit % 64);
  }

  void Reset(size_t bit) {
    JINFER_DCHECK(bit < kMaxBits, "Reset(%zu) out of range", bit);
    words_[bit / 64] &= ~(uint64_t{1} << (bit % 64));
  }

  bool Test(size_t bit) const {
    JINFER_DCHECK(bit < kMaxBits, "Test(%zu) out of range", bit);
    return (words_[bit / 64] >> (bit % 64)) & 1;
  }

  bool Empty() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  /// Number of 64-bit words needed to cover bit indices [0, nbits);
  /// always >= 1 so prefix loops never degenerate.
  static constexpr size_t WordsFor(size_t nbits) {
    return nbits == 0 ? 1 : (nbits + 63) / 64;
  }

  /// The i-th 64-bit word (bits [64i, 64i+64)). Lets single-word callers
  /// (|Ω| ≤ 64) run their inner loops on plain uint64_t values.
  uint64_t word(size_t i) const {
    JINFER_CHECK(i < kWords, "word(%zu) out of range", i);
    return words_[i];
  }

  /// True iff *this is a subset of `other` (not necessarily strict).
  bool IsSubsetOf(const SmallBitset& other) const {
    for (size_t w = 0; w < kWords; ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  // Prefix variants of the hot-path operations: they touch only the first
  // `words` words. Exact whenever neither operand has a set bit at index
  // >= words * 64 — the inference core guarantees this with
  // words = WordsFor(|Ω|), since every predicate lives inside Ω. On the
  // common 3×3-attribute instances this is 1 word instead of 4.

  /// IsSubsetOf over the first `words` words. The single-word case is
  /// branched explicitly: a constant-bound loop unrolls, a runtime-bound
  /// one does not, and one word covers every instance up to 8×8 attributes.
  bool IsSubsetOfPrefix(const SmallBitset& other, size_t words) const {
    if (words == 1) return (words_[0] & ~other.words_[0]) == 0;
    for (size_t w = 0; w < words; ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  /// Equality over the first `words` words.
  bool EqualsPrefix(const SmallBitset& other, size_t words) const {
    if (words == 1) return words_[0] == other.words_[0];
    for (size_t w = 0; w < words; ++w) {
      if (words_[w] != other.words_[w]) return false;
    }
    return true;
  }

  /// In-place intersection over the first `words` words (the rest keep
  /// their value — zero for in-Ω predicates, making this a full &=).
  void AndPrefixInPlace(const SmallBitset& o, size_t words) {
    if (words == 1) {
      words_[0] &= o.words_[0];
      return;
    }
    for (size_t w = 0; w < words; ++w) words_[w] &= o.words_[w];
  }

  /// Hash() over the first `words` words. Not interchangeable with Hash():
  /// containers must use one or the other consistently.
  size_t HashPrefix(size_t words) const {
    if (words == 1) return static_cast<size_t>(Mix64(words_[0]));
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t w = 0; w < words; ++w) h = Mix64(words_[w] + h);
    return static_cast<size_t>(h);
  }

  /// True iff *this is a strict subset of `other`.
  bool IsStrictSubsetOf(const SmallBitset& other) const {
    return IsSubsetOf(other) && *this != other;
  }

  bool Intersects(const SmallBitset& other) const {
    for (size_t w = 0; w < kWords; ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  SmallBitset operator&(const SmallBitset& o) const {
    SmallBitset r;
    for (size_t w = 0; w < kWords; ++w) r.words_[w] = words_[w] & o.words_[w];
    return r;
  }
  SmallBitset operator|(const SmallBitset& o) const {
    SmallBitset r;
    for (size_t w = 0; w < kWords; ++w) r.words_[w] = words_[w] | o.words_[w];
    return r;
  }
  SmallBitset operator^(const SmallBitset& o) const {
    SmallBitset r;
    for (size_t w = 0; w < kWords; ++w) r.words_[w] = words_[w] ^ o.words_[w];
    return r;
  }
  /// Set difference: bits in *this but not in `o`.
  SmallBitset operator-(const SmallBitset& o) const {
    SmallBitset r;
    for (size_t w = 0; w < kWords; ++w) r.words_[w] = words_[w] & ~o.words_[w];
    return r;
  }
  SmallBitset& operator&=(const SmallBitset& o) {
    for (size_t w = 0; w < kWords; ++w) words_[w] &= o.words_[w];
    return *this;
  }
  SmallBitset& operator|=(const SmallBitset& o) {
    for (size_t w = 0; w < kWords; ++w) words_[w] |= o.words_[w];
    return *this;
  }

  friend bool operator==(const SmallBitset& a, const SmallBitset& b) {
    return a.words_ == b.words_;
  }
  friend bool operator!=(const SmallBitset& a, const SmallBitset& b) {
    return !(a == b);
  }
  /// Lexicographic-by-word order; any strict total order works for use as
  /// std::map keys and canonical sorting.
  friend bool operator<(const SmallBitset& a, const SmallBitset& b) {
    for (size_t w = kWords; w-- > 0;) {
      if (a.words_[w] != b.words_[w]) return a.words_[w] < b.words_[w];
    }
    return false;
  }

  /// Index of the lowest set bit; kMaxBits when empty.
  size_t FirstSetBit() const {
    for (size_t w = 0; w < kWords; ++w) {
      if (words_[w] != 0) {
        return w * 64 + static_cast<size_t>(std::countr_zero(words_[w]));
      }
    }
    return kMaxBits;
  }

  /// Index of the lowest set bit that is >= `from`; kMaxBits when none.
  size_t NextSetBit(size_t from) const {
    if (from >= kMaxBits) return kMaxBits;
    size_t w = from / 64;
    uint64_t masked = words_[w] & (~uint64_t{0} << (from % 64));
    while (true) {
      if (masked != 0) {
        return w * 64 + static_cast<size_t>(std::countr_zero(masked));
      }
      if (++w == kWords) return kMaxBits;
      masked = words_[w];
    }
  }

  /// Calls fn(bit) for every set bit, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < kWords; ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        size_t bit = w * 64 + static_cast<size_t>(std::countr_zero(word));
        fn(bit);
        word &= word - 1;
      }
    }
  }

  /// 64-bit mix hash over the words (splitmix-style combiner).
  size_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t w : words_) h = Mix64(w + h);
    return static_cast<size_t>(h);
  }

  /// Debug string, e.g. "{0,3,17}".
  std::string ToString() const;

 private:
  std::array<uint64_t, kWords> words_;
};

struct SmallBitsetHash {
  size_t operator()(const SmallBitset& b) const { return b.Hash(); }
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_BITSET_H_
