// JINFER_CHECK: internal invariant assertion, enabled in all build types
// (the algorithms here are cheap relative to the checks, and silent
// corruption of inference state would invalidate experiments).

#ifndef JINFER_UTIL_CHECK_H_
#define JINFER_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a printf-style message when `cond` is false.
#define JINFER_CHECK(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "JINFER_CHECK failed at %s:%d: ", __FILE__, \
                   __LINE__);                                          \
      std::fprintf(stderr, __VA_ARGS__);                               \
      std::fprintf(stderr, "\n");                                      \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#endif  // JINFER_UTIL_CHECK_H_
