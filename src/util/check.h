// JINFER_CHECK: internal invariant assertion, enabled in all build types
// (the algorithms here are cheap relative to the checks, and silent
// corruption of inference state would invalidate experiments).

#ifndef JINFER_UTIL_CHECK_H_
#define JINFER_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a printf-style message when `cond` is false.
#define JINFER_CHECK(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "JINFER_CHECK failed at %s:%d: ", __FILE__, \
                   __LINE__);                                          \
      std::fprintf(stderr, __VA_ARGS__);                               \
      std::fprintf(stderr, "\n");                                      \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

/// Debug-mode variant for per-bit/per-word assertions on kernel hot paths,
/// where an always-on branch would defeat auto-vectorization. Enabled in
/// Debug builds (and whenever JINFER_DEBUG_CHECKS is defined); compiles to
/// nothing in Release. The sanitizer, chaos and TSan CI jobs all build
/// Debug, so these stay exercised on every change.
#if !defined(NDEBUG) || defined(JINFER_DEBUG_CHECKS)
#define JINFER_DCHECK(cond, ...) JINFER_CHECK(cond, __VA_ARGS__)
#else
#define JINFER_DCHECK(cond, ...) \
  do {                           \
  } while (false)
#endif

#endif  // JINFER_UTIL_CHECK_H_
