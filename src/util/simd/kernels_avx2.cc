// AVX2 kernel backend: 256-bit lanes, compiled with function-level target
// attributes so this TU needs no global ISA flags and the binary stays
// runnable on pre-AVX2 hardware (nothing here executes unless the CPUID
// probe approved it — see dispatch.cc).
//
// The span predicates widen the word loop to 4-word strides with the same
// branch-free OR-accumulator reduction as the scalar forms. The fused u±
// sweep vectorizes across *candidates*: four candidates' signature and
// key words are held in lane vectors (built once per 4-candidate group),
// the inner loop broadcasts each streamed class's key words and count,
// and the Lemma 3.3/3.4 predicates become lane masks feeding masked
// 64-bit adds — so all four accumulator lanes run the identical exact
// mod-2^64 sums as four scalar passes, in lockstep. Candidate tails
// (< 4 lanes) fall through to the scalar block, which is bit-identical.

#include "util/simd/backends.h"

#if JINFER_SIMD_X86

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace jinfer {
namespace util {
namespace simd {
namespace internal {

namespace {

#define JINFER_TARGET_AVX2 __attribute__((target("avx2")))

JINFER_TARGET_AVX2 inline __m256i Load4(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

JINFER_TARGET_AVX2 bool IsSubsetAvx2(const uint64_t* a, const uint64_t* b,
                                     size_t words) {
  __m256i stray = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    stray = _mm256_or_si256(stray,
                            _mm256_andnot_si256(Load4(b + w), Load4(a + w)));
  }
  uint64_t tail = 0;
  for (; w < words; ++w) tail |= a[w] & ~b[w];
  return _mm256_testz_si256(stray, stray) != 0 && tail == 0;
}

JINFER_TARGET_AVX2 bool EqualAvx2(const uint64_t* a, const uint64_t* b,
                                  size_t words) {
  __m256i diff = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    diff = _mm256_or_si256(diff, _mm256_xor_si256(Load4(a + w), Load4(b + w)));
  }
  uint64_t tail = 0;
  for (; w < words; ++w) tail |= a[w] ^ b[w];
  return _mm256_testz_si256(diff, diff) != 0 && tail == 0;
}

JINFER_TARGET_AVX2 bool IntersectsAvx2(const uint64_t* a, const uint64_t* b,
                                       size_t words) {
  __m256i common = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    common =
        _mm256_or_si256(common, _mm256_and_si256(Load4(a + w), Load4(b + w)));
  }
  uint64_t tail = 0;
  for (; w < words; ++w) tail |= a[w] & b[w];
  return _mm256_testz_si256(common, common) == 0 || tail != 0;
}

/// Nibble-LUT popcount (pshufb + psadbw): 32 bytes per step, the classic
/// AVX2 form. Exact, so bit-identical to std::popcount sums.
JINFER_TARGET_AVX2 size_t PopcountAvx2(const uint64_t* a, size_t words) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v = Load4(a + w);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
    const __m256i bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                          _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
  }
  size_t total = static_cast<size_t>(_mm256_extract_epi64(acc, 0)) +
                 static_cast<size_t>(_mm256_extract_epi64(acc, 1)) +
                 static_cast<size_t>(_mm256_extract_epi64(acc, 2)) +
                 static_cast<size_t>(_mm256_extract_epi64(acc, 3));
  for (; w < words; ++w) {
    total += static_cast<size_t>(std::popcount(a[w]));
  }
  return total;
}

/// Four candidates per pass. W is compile-time so the per-word vector
/// arrays live in registers, exactly like the scalar fixed-width blocks.
template <size_t W>
JINFER_TARGET_AVX2 void SweepBlockAvx2Fixed(const SweepBlockArgs& a) {
  const __m256i zero = _mm256_setzero_si256();
  size_t j = a.jb;
  for (; j + 4 <= a.je; j += 4) {
    __m256i sigv[W];
    __m256i keyv[W];
    for (size_t w = 0; w < W; ++w) {
      if constexpr (W == 1) {
        sigv[w] = Load4(&a.sigs[j]);
        keyv[w] = Load4(&a.keys[j]);
      } else {
        sigv[w] = _mm256_set_epi64x(
            static_cast<int64_t>(a.sigs[(j + 3) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 2) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 1) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 0) * W + w]));
        keyv[w] = _mm256_set_epi64x(
            static_cast<int64_t>(a.keys[(j + 3) * W + w]),
            static_cast<int64_t>(a.keys[(j + 2) * W + w]),
            static_cast<int64_t>(a.keys[(j + 1) * W + w]),
            static_cast<int64_t>(a.keys[(j + 0) * W + w]));
      }
    }
    __m256i upos = zero;
    __m256i uneg = zero;
    for (size_t i = a.ib; i < a.ie; ++i) {
      __m256i stray = zero;
      __m256i diff = zero;
      __m256i key2[W];
      for (size_t w = 0; w < W; ++w) {
        const __m256i k =
            _mm256_set1_epi64x(static_cast<int64_t>(a.keys[i * W + w]));
        key2[w] = _mm256_and_si256(k, sigv[w]);
        stray = _mm256_or_si256(stray, _mm256_andnot_si256(sigv[w], k));
        diff = _mm256_or_si256(diff, _mm256_xor_si256(key2[w], keyv[w]));
      }
      const __m256i cnt =
          _mm256_set1_epi64x(static_cast<int64_t>(a.cnts[i]));
      uneg = _mm256_add_epi64(
          uneg, _mm256_and_si256(cnt, _mm256_cmpeq_epi64(stray, zero)));
      __m256i pos = _mm256_cmpeq_epi64(diff, zero);
      for (size_t g = 0; g < a.num_negs; ++g) {
        __m256i wstray = zero;
        for (size_t w = 0; w < W; ++w) {
          const __m256i nb =
              _mm256_set1_epi64x(static_cast<int64_t>(a.negs[g * W + w]));
          wstray = _mm256_or_si256(wstray, _mm256_andnot_si256(nb, key2[w]));
        }
        pos = _mm256_or_si256(pos, _mm256_cmpeq_epi64(wstray, zero));
      }
      upos = _mm256_add_epi64(upos, _mm256_and_si256(cnt, pos));
    }
    __m256i* out_pos = reinterpret_cast<__m256i*>(&a.u_pos[j]);
    __m256i* out_neg = reinterpret_cast<__m256i*>(&a.u_neg[j]);
    _mm256_storeu_si256(out_pos,
                        _mm256_add_epi64(_mm256_loadu_si256(out_pos), upos));
    _mm256_storeu_si256(out_neg,
                        _mm256_add_epi64(_mm256_loadu_si256(out_neg), uneg));
  }
  if (j < a.je) {
    SweepBlockArgs tail = a;
    tail.jb = j;
    SweepBlockScalar(tail);
  }
}

void SweepBlockAvx2(const SweepBlockArgs& a) {
  switch (a.words) {
    case 1:
      SweepBlockAvx2Fixed<1>(a);
      break;
    case 2:
      SweepBlockAvx2Fixed<2>(a);
      break;
    case 3:
      SweepBlockAvx2Fixed<3>(a);
      break;
    case 4:
      SweepBlockAvx2Fixed<4>(a);
      break;
    default:
      SweepBlockScalar(a);  // Variable-width formats; bit-identical anyway.
      break;
  }
}

#undef JINFER_TARGET_AVX2

}  // namespace

const KernelOps kAvx2Ops = {
    KernelBackend::kAvx2, &IsSubsetAvx2,  &EqualAvx2,
    &IntersectsAvx2,      &PopcountAvx2,  &SweepBlockAvx2,
};

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace jinfer

#endif  // JINFER_SIMD_X86
