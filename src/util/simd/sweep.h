// Tiled, optionally striped driver for the fused u± candidate sweep
// (DESIGN.md §12.4). The backends expose one composable i×j block kernel
// (SweepBlockArgs in dispatch.h); this driver owns the full [0,n)×[0,n)
// sweep: zero-fill, cache tiling, optional ParallelFor striping over
// candidates, and the flat −1 self-class correction.
//
// Bit-identity across tilings and thread counts: every candidate j's two
// accumulators are uint64 sums over the streamed classes, associative and
// commutative mod 2^64, and each j is owned by exactly one contiguous
// stripe — so splitting [0,n)² into blocks in any order, on any number of
// threads, lands the same columns as the monolithic pass.

#ifndef JINFER_UTIL_SIMD_SWEEP_H_
#define JINFER_UTIL_SIMD_SWEEP_H_

#include <cstddef>
#include <cstdint>

#include "util/simd/dispatch.h"

namespace jinfer {
namespace util {
namespace simd {

/// The full sweep instance: n candidates = n streamed classes over the
/// class-major packed arrays (stride `words`). See SweepBlockArgs for the
/// per-pair semantics.
struct SweepArgs {
  const uint64_t* keys = nullptr;
  const uint64_t* sigs = nullptr;
  const uint64_t* cnts = nullptr;
  const uint64_t* negs = nullptr;
  size_t num_negs = 0;
  size_t words = 1;
  size_t n = 0;
};

/// Cache tiling for the sweep. The inner loop streams (words+1)·8 bytes
/// per class (key words + count; the candidate-side signature and key
/// loads are per-tile, amortized); `i_tile` caps an i-block's stream at
/// the L2 budget so a block loaded once serves a whole `j_tile`-candidate
/// output slice, cutting RAM traffic by ~j_tile/lane-width versus the
/// untiled pass. Tiling only engages when n > i_tile — below that the
/// whole stream lives in cache anyway and the monolithic block is used.
struct SweepTiling {
  size_t i_tile;
  size_t j_tile;
};

/// The measured-default tiling for this word width: a 256 KiB i-block
/// stream and 2048-candidate output slices. The constants come from the
/// BM_EntropySweepTiled tile-size sweep recorded in bench/BENCH_core.json
/// (i_tile arg 0 = untiled; the knee sits at the L2-sized block).
SweepTiling DefaultSweepTiling(size_t words);

/// Candidate count at or above which SweepUCounts stripes candidates over
/// util::ParallelFor (when SetSweepThreads allows more than one). Below
/// it, thread spawn overhead beats the win.
inline constexpr size_t kSweepParallelMinCandidates = 4096;

/// Process-global sweep thread budget: values >= 1 are taken as-is, 0
/// means one per hardware thread. Defaults to 1 — sessions already run on
/// per-connection workers, and nesting fork-join under them would
/// oversubscribe; single-session tools (benches, batch replays) opt in.
void SetSweepThreads(int threads);
int SweepThreads();

/// The full u± sweep: zero-fills u_pos/u_neg[0, n), runs the active
/// backend's block kernel under DefaultSweepTiling (striped over
/// ParallelFor when n ≥ kSweepParallelMinCandidates and SweepThreads()
/// allows), then applies the −1 self-class correction per candidate.
/// Results are identical for every backend, tiling, and thread count.
void SweepUCounts(const SweepArgs& args, uint64_t* u_pos, uint64_t* u_neg);

namespace internal {
/// Accumulating tiled sweep over the candidate range [jb, je) with an
/// explicit backend and tiling: the building block SweepUCounts stripes,
/// exposed for the tile-size bench and the tiling parity tests. Does NOT
/// zero-fill and does NOT apply the self-class correction.
void SweepRangeTiled(const KernelOps& ops, const SweepArgs& args, size_t jb,
                     size_t je, const SweepTiling& tiling, uint64_t* u_pos,
                     uint64_t* u_neg);
}  // namespace internal

}  // namespace simd
}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_SIMD_SWEEP_H_
