// Scalar kernel backend: the reference every other backend must match
// bit for bit. The loops are the PR 8 shapes — branch-free accumulator
// predicates, and the fused u± sweep with per-candidate register
// accumulators (the former InferenceState W==1 hand loop and
// SweepUCountsFixed<2..4>, generalized to composable i×j blocks).

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/check.h"
#include "util/simd/backends.h"

namespace jinfer {
namespace util {
namespace simd {
namespace internal {

namespace {

bool IsSubsetScalar(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t stray = 0;
  for (size_t w = 0; w < words; ++w) stray |= a[w] & ~b[w];
  return stray == 0;
}

bool EqualScalar(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t diff = 0;
  for (size_t w = 0; w < words; ++w) diff |= a[w] ^ b[w];
  return diff == 0;
}

bool IntersectsScalar(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t common = 0;
  for (size_t w = 0; w < words; ++w) common |= a[w] & b[w];
  return common != 0;
}

size_t PopcountScalar(const uint64_t* a, size_t words) {
  size_t c = 0;
  for (size_t w = 0; w < words; ++w) {
    c += static_cast<size_t>(std::popcount(a[w]));
  }
  return c;
}

/// Lemma 3.4 against every witness row; early-out on the first container.
template <size_t W>
bool AnyWitnessContainsFixed(const uint64_t* key, const uint64_t* negs,
                             size_t num_negs) {
  for (size_t g = 0; g < num_negs; ++g) {
    uint64_t stray = 0;
    for (size_t w = 0; w < W; ++w) stray |= key[w] & ~negs[g * W + w];
    if (stray == 0) return true;
  }
  return false;
}

/// The fused u± block with the word count as a compile-time constant, so
/// every inner word loop fully unrolls. Same pair order and exact integer
/// sums as the pre-dispatch sweep; the only difference is accumulation
/// into the columns (`+=`), which makes i-blocks composable.
template <size_t W>
void SweepBlockFixed(const SweepBlockArgs& a) {
  for (size_t j = a.jb; j < a.je; ++j) {
    uint64_t sigw[W];
    uint64_t keyj[W];
    for (size_t w = 0; w < W; ++w) {
      sigw[w] = a.sigs[j * W + w];
      keyj[w] = a.keys[j * W + w];
    }
    uint64_t upos = 0, uneg = 0;
    for (size_t i = a.ib; i < a.ie; ++i) {
      const uint64_t* k = &a.keys[i * W];
      const uint64_t cnt = a.cnts[i];
      uint64_t stray = 0;
      uint64_t diff = 0;
      uint64_t key2[W];
      for (size_t w = 0; w < W; ++w) {
        key2[w] = k[w] & sigw[w];
        stray |= k[w] & ~sigw[w];
        diff |= key2[w] ^ keyj[w];
      }
      if (stray == 0) uneg += cnt;  // k ⊆ T(t_j).
      if (diff == 0 || AnyWitnessContainsFixed<W>(key2, a.negs, a.num_negs)) {
        upos += cnt;
      }
    }
    a.u_pos[j] += upos;
    a.u_neg[j] += uneg;
  }
}

/// Runtime-width fallback for word counts past the fixed instantiations
/// (the future variable-width predicate formats). Bit-identical, just not
/// unrolled. Capped at 8 words of per-pair scratch.
constexpr size_t kMaxSweepWords = 8;

void SweepBlockGeneric(const SweepBlockArgs& a) {
  const size_t W = a.words;
  for (size_t j = a.jb; j < a.je; ++j) {
    const uint64_t* sigw = &a.sigs[j * W];
    const uint64_t* keyj = &a.keys[j * W];
    uint64_t upos = 0, uneg = 0;
    for (size_t i = a.ib; i < a.ie; ++i) {
      const uint64_t* k = &a.keys[i * W];
      const uint64_t cnt = a.cnts[i];
      uint64_t stray = 0;
      uint64_t diff = 0;
      uint64_t key2[kMaxSweepWords];
      for (size_t w = 0; w < W; ++w) {
        key2[w] = k[w] & sigw[w];
        stray |= k[w] & ~sigw[w];
        diff |= key2[w] ^ keyj[w];
      }
      if (stray == 0) uneg += cnt;
      bool pos = diff == 0;
      for (size_t g = 0; !pos && g < a.num_negs; ++g) {
        pos = IsSubsetScalar(key2, &a.negs[g * W], W);
      }
      if (pos) upos += cnt;
    }
    a.u_pos[j] += upos;
    a.u_neg[j] += uneg;
  }
}

}  // namespace

void SweepBlockScalar(const SweepBlockArgs& a) {
  switch (a.words) {
    case 1:
      SweepBlockFixed<1>(a);
      break;
    case 2:
      SweepBlockFixed<2>(a);
      break;
    case 3:
      SweepBlockFixed<3>(a);
      break;
    case 4:
      SweepBlockFixed<4>(a);
      break;
    default:
      JINFER_CHECK(a.words <= kMaxSweepWords,
                   "sweep over %zu words exceeds the kernel cap", a.words);
      SweepBlockGeneric(a);
      break;
  }
}

const KernelOps kScalarOps = {
    KernelBackend::kScalar, &IsSubsetScalar,  &EqualScalar,
    &IntersectsScalar,      &PopcountScalar,  &SweepBlockScalar,
};

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace jinfer
