// CPUID-based feature probe backing the kernel-backend dispatch
// (DESIGN.md §12.4).
//
// Probing is done once per process and cached; the result reflects both
// the CPU's instruction-set bits and the OS's XSAVE state (a kernel that
// does not context-switch ZMM registers must not be handed AVX-512 code,
// however loudly CPUID advertises it — hence the XGETBV checks).

#ifndef JINFER_UTIL_SIMD_CPU_FEATURES_H_
#define JINFER_UTIL_SIMD_CPU_FEATURES_H_

// The SIMD backends are compiled (per-TU, with function-level target
// attributes) only for x86-64 under GCC/Clang; everywhere else the
// dispatch table holds the scalar backend alone and this probe returns
// all-false.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define JINFER_SIMD_X86 1
#else
#define JINFER_SIMD_X86 0
#endif

namespace jinfer {
namespace util {
namespace simd {

struct CpuFeatures {
  /// AVX2, with OS support for YMM state.
  bool avx2 = false;
  /// The AVX-512 subset the kernels use — F+BW+DQ+VL — with OS support
  /// for ZMM and opmask state.
  bool avx512 = false;
  /// VPOPCNTDQ on top of the core AVX-512 set (absent on Skylake-SP; the
  /// AVX-512 backend substitutes the AVX2 popcount kernel without it).
  bool avx512_vpopcntdq = false;
};

/// The process-wide probe result, computed on first call.
const CpuFeatures& DetectCpuFeatures();

}  // namespace simd
}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_SIMD_CPU_FEATURES_H_
