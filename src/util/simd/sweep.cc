#include "util/simd/sweep.h"

#include <algorithm>
#include <atomic>

#include "util/parallel.h"

namespace jinfer {
namespace util {
namespace simd {

namespace {

/// L2 budget for one streamed i-block (keys + counts). 256 KiB leaves
/// headroom in a typical 512 KiB–1.25 MiB private L2 for the output slice
/// and the candidate-side loads.
constexpr size_t kSweepStreamBudgetBytes = 256 * 1024;

std::atomic<int> g_sweep_threads{1};

}  // namespace

SweepTiling DefaultSweepTiling(size_t words) {
  size_t bytes_per_class = (words + 1) * sizeof(uint64_t);
  size_t i_tile = kSweepStreamBudgetBytes / bytes_per_class;
  return SweepTiling{std::max<size_t>(i_tile, 1024), 2048};
}

void SetSweepThreads(int threads) {
  g_sweep_threads.store(threads, std::memory_order_relaxed);
}

int SweepThreads() { return g_sweep_threads.load(std::memory_order_relaxed); }

namespace internal {

void SweepRangeTiled(const KernelOps& ops, const SweepArgs& args, size_t jb,
                     size_t je, const SweepTiling& tiling, uint64_t* u_pos,
                     uint64_t* u_neg) {
  SweepBlockArgs block;
  block.keys = args.keys;
  block.sigs = args.sigs;
  block.cnts = args.cnts;
  block.negs = args.negs;
  block.num_negs = args.num_negs;
  block.words = args.words;
  block.u_pos = u_pos;
  block.u_neg = u_neg;
  const size_t n = args.n;
  if (n <= tiling.i_tile) {
    // The whole class stream fits the cache budget: one monolithic block.
    block.jb = jb;
    block.je = je;
    block.ib = 0;
    block.ie = n;
    ops.sweep_block(block);
    return;
  }
  // j-tile outer so each output slice stays resident; i-blocks inner so a
  // cache-sized key/count stream is reused across the whole slice. Block
  // order is irrelevant to the results (see sweep.h), chosen for locality.
  for (size_t tj = jb; tj < je; tj += tiling.j_tile) {
    block.jb = tj;
    block.je = std::min(tj + tiling.j_tile, je);
    for (size_t ti = 0; ti < n; ti += tiling.i_tile) {
      block.ib = ti;
      block.ie = std::min(ti + tiling.i_tile, n);
      ops.sweep_block(block);
    }
  }
}

}  // namespace internal

void SweepUCounts(const SweepArgs& args, uint64_t* u_pos, uint64_t* u_neg) {
  const size_t n = args.n;
  std::fill_n(u_pos, n, 0);
  std::fill_n(u_neg, n, 0);
  if (n == 0) return;
  const KernelOps& ops = ActiveKernelOps();
  const SweepTiling tiling = DefaultSweepTiling(args.words);
  size_t threads = 1;
  if (n >= kSweepParallelMinCandidates) {
    threads = ResolveThreadCount(SweepThreads());
  }
  if (threads > 1) {
    // Contiguous candidate stripes; each j is owned by exactly one worker,
    // so the columns are thread-count invariant (and data-race free).
    ParallelFor(n, threads, [&](size_t jb, size_t je, size_t /*worker*/) {
      internal::SweepRangeTiled(ops, args, jb, je, tiling, u_pos, u_neg);
    });
  } else {
    internal::SweepRangeTiled(ops, args, 0, n, tiling, u_pos, u_neg);
  }
  for (size_t j = 0; j < n; ++j) {
    // Self class: count(j) counted by both tests, count(j)−1 due.
    u_pos[j] -= 1;
    u_neg[j] -= 1;
  }
}

}  // namespace simd
}  // namespace util
}  // namespace jinfer
