// AVX-512 kernel backend (F+BW+DQ+VL, VPOPCNTDQ where present): the
// 512-bit analogue of the AVX2 TU — eight candidate lanes per sweep pass,
// with the Lemma 3.3/3.4 predicates landing directly in opmask registers
// feeding masked 64-bit adds. Same function-level target attributes, same
// scalar tail for sub-lane candidate remainders, same exact mod-2^64
// arithmetic, so the columns stay bit-identical to every other backend.

#include "util/simd/backends.h"

#if JINFER_SIMD_X86

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace jinfer {
namespace util {
namespace simd {
namespace internal {

namespace {

#define JINFER_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))
#define JINFER_TARGET_AVX512_POPCNT \
  __attribute__((target("avx512f,avx512vpopcntdq")))

JINFER_TARGET_AVX512 inline __m512i Load8(const uint64_t* p) {
  return _mm512_loadu_si512(p);
}

JINFER_TARGET_AVX512 bool IsSubsetAvx512(const uint64_t* a, const uint64_t* b,
                                         size_t words) {
  __m512i stray = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    stray = _mm512_or_si512(stray,
                            _mm512_andnot_si512(Load8(b + w), Load8(a + w)));
  }
  uint64_t tail = 0;
  for (; w < words; ++w) tail |= a[w] & ~b[w];
  return _mm512_test_epi64_mask(stray, stray) == 0 && tail == 0;
}

JINFER_TARGET_AVX512 bool EqualAvx512(const uint64_t* a, const uint64_t* b,
                                      size_t words) {
  __mmask8 diff = 0;
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    diff |= _mm512_cmpneq_epi64_mask(Load8(a + w), Load8(b + w));
  }
  uint64_t tail = 0;
  for (; w < words; ++w) tail |= a[w] ^ b[w];
  return diff == 0 && tail == 0;
}

JINFER_TARGET_AVX512 bool IntersectsAvx512(const uint64_t* a,
                                           const uint64_t* b, size_t words) {
  __mmask8 common = 0;
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    common |= _mm512_test_epi64_mask(Load8(a + w), Load8(b + w));
  }
  uint64_t tail = 0;
  for (; w < words; ++w) tail |= a[w] & b[w];
  return common != 0 || tail != 0;
}

/// VPOPCNTQ path; dispatch.cc only installs this on CPUs advertising
/// AVX512VPOPCNTDQ (Skylake-SP gets the AVX2 kernel instead).
JINFER_TARGET_AVX512_POPCNT size_t PopcountAvx512(const uint64_t* a,
                                                  size_t words) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + w)));
  }
  size_t total = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) {
    total += static_cast<size_t>(std::popcount(a[w]));
  }
  return total;
}

/// Eight candidates per pass; structure mirrors SweepBlockAvx2Fixed with
/// compare masks in place of compare vectors.
template <size_t W>
JINFER_TARGET_AVX512 void SweepBlockAvx512Fixed(const SweepBlockArgs& a) {
  const __m512i zero = _mm512_setzero_si512();
  size_t j = a.jb;
  for (; j + 8 <= a.je; j += 8) {
    __m512i sigv[W];
    __m512i keyv[W];
    for (size_t w = 0; w < W; ++w) {
      if constexpr (W == 1) {
        sigv[w] = Load8(&a.sigs[j]);
        keyv[w] = Load8(&a.keys[j]);
      } else {
        sigv[w] = _mm512_set_epi64(
            static_cast<int64_t>(a.sigs[(j + 7) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 6) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 5) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 4) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 3) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 2) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 1) * W + w]),
            static_cast<int64_t>(a.sigs[(j + 0) * W + w]));
        keyv[w] = _mm512_set_epi64(
            static_cast<int64_t>(a.keys[(j + 7) * W + w]),
            static_cast<int64_t>(a.keys[(j + 6) * W + w]),
            static_cast<int64_t>(a.keys[(j + 5) * W + w]),
            static_cast<int64_t>(a.keys[(j + 4) * W + w]),
            static_cast<int64_t>(a.keys[(j + 3) * W + w]),
            static_cast<int64_t>(a.keys[(j + 2) * W + w]),
            static_cast<int64_t>(a.keys[(j + 1) * W + w]),
            static_cast<int64_t>(a.keys[(j + 0) * W + w]));
      }
    }
    __m512i upos = zero;
    __m512i uneg = zero;
    for (size_t i = a.ib; i < a.ie; ++i) {
      __m512i stray = zero;
      __m512i diff = zero;
      __m512i key2[W];
      for (size_t w = 0; w < W; ++w) {
        const __m512i k =
            _mm512_set1_epi64(static_cast<int64_t>(a.keys[i * W + w]));
        key2[w] = _mm512_and_si512(k, sigv[w]);
        stray = _mm512_or_si512(stray, _mm512_andnot_si512(sigv[w], k));
        diff = _mm512_or_si512(diff, _mm512_xor_si512(key2[w], keyv[w]));
      }
      const __m512i cnt =
          _mm512_set1_epi64(static_cast<int64_t>(a.cnts[i]));
      const __mmask8 negm = _mm512_cmpeq_epi64_mask(stray, zero);
      uneg = _mm512_mask_add_epi64(uneg, negm, uneg, cnt);
      __mmask8 posm = _mm512_cmpeq_epi64_mask(diff, zero);
      for (size_t g = 0; g < a.num_negs; ++g) {
        __m512i wstray = zero;
        for (size_t w = 0; w < W; ++w) {
          const __m512i nb =
              _mm512_set1_epi64(static_cast<int64_t>(a.negs[g * W + w]));
          wstray = _mm512_or_si512(wstray, _mm512_andnot_si512(nb, key2[w]));
        }
        posm |= _mm512_cmpeq_epi64_mask(wstray, zero);
      }
      upos = _mm512_mask_add_epi64(upos, posm, upos, cnt);
    }
    _mm512_storeu_si512(&a.u_pos[j],
                        _mm512_add_epi64(_mm512_loadu_si512(&a.u_pos[j]),
                                         upos));
    _mm512_storeu_si512(&a.u_neg[j],
                        _mm512_add_epi64(_mm512_loadu_si512(&a.u_neg[j]),
                                         uneg));
  }
  if (j < a.je) {
    SweepBlockArgs tail = a;
    tail.jb = j;
    SweepBlockScalar(tail);
  }
}

void SweepBlockAvx512(const SweepBlockArgs& a) {
  switch (a.words) {
    case 1:
      SweepBlockAvx512Fixed<1>(a);
      break;
    case 2:
      SweepBlockAvx512Fixed<2>(a);
      break;
    case 3:
      SweepBlockAvx512Fixed<3>(a);
      break;
    case 4:
      SweepBlockAvx512Fixed<4>(a);
      break;
    default:
      SweepBlockScalar(a);  // Variable-width formats; bit-identical anyway.
      break;
  }
}

#undef JINFER_TARGET_AVX512
#undef JINFER_TARGET_AVX512_POPCNT

}  // namespace

const KernelOps kAvx512Ops = {
    KernelBackend::kAvx512, &IsSubsetAvx512,  &EqualAvx512,
    &IntersectsAvx512,      &PopcountAvx512,  &SweepBlockAvx512,
};

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace jinfer

#endif  // JINFER_SIMD_X86
