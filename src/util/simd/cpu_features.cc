#include "util/simd/cpu_features.h"

#include <cstdint>

#if JINFER_SIMD_X86
#include <cpuid.h>
#endif

namespace jinfer {
namespace util {
namespace simd {

namespace {

#if JINFER_SIMD_X86

/// XGETBV(0): which register state the OS saves/restores. Emitted as raw
/// bytes so no -mxsave flag is needed for this TU.
uint64_t Xcr0() {
  uint32_t eax, edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures Probe() {
  CpuFeatures f;
  unsigned eax, ebx, ecx, edx;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return f;

  const uint64_t xcr0 = Xcr0();
  const bool ymm_state = (xcr0 & 0x6) == 0x6;           // XMM + YMM.
  const bool zmm_state = (xcr0 & 0xe6) == 0xe6;         // + opmask, ZMM.
  if (!ymm_state) return f;

  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512dq = (ebx & (1u << 17)) != 0;
  const bool avx512bw = (ebx & (1u << 30)) != 0;
  const bool avx512vl = (ebx & (1u << 31)) != 0;
  f.avx512 = zmm_state && avx512f && avx512dq && avx512bw && avx512vl;
  f.avx512_vpopcntdq = f.avx512 && (ecx & (1u << 14)) != 0;
  return f;
}

#else  // !JINFER_SIMD_X86

CpuFeatures Probe() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

}  // namespace simd
}  // namespace util
}  // namespace jinfer
