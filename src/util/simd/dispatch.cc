// Backend selection: probe the CPU, honor JINFER_KERNEL_BACKEND, publish
// the chosen kernel table. See dispatch.h for the contract.

#include "util/simd/dispatch.h"

#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/simd/backends.h"

namespace jinfer {
namespace util {
namespace simd {

namespace internal {

std::atomic<const KernelOps*> g_active_ops{nullptr};

namespace {

#if JINFER_SIMD_X86
/// kAvx512Ops with the AVX2 popcount spliced in, for CPUs with the core
/// AVX-512 set but no VPOPCNTDQ (Skylake-SP). Built on demand, immutable
/// after.
const KernelOps& Avx512OpsNoVpopcnt() {
  static const KernelOps ops = [] {
    KernelOps patched = kAvx512Ops;
    patched.popcount_words = kAvx2Ops.popcount_words;
    return patched;
  }();
  return ops;
}
#endif

const KernelOps& OpsForSupported(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return kScalarOps;
#if JINFER_SIMD_X86
    case KernelBackend::kAvx2:
      return kAvx2Ops;
    case KernelBackend::kAvx512:
      return DetectCpuFeatures().avx512_vpopcntdq ? kAvx512Ops
                                                  : Avx512OpsNoVpopcnt();
#endif
    default:
      JINFER_CHECK(false, "kernel backend %d not compiled into this binary",
                   static_cast<int>(backend));
      return kScalarOps;  // Unreachable.
  }
}

KernelBackend WidestSupportedBackend() {
  const CpuFeatures& cpu = DetectCpuFeatures();
  if (cpu.avx512) return KernelBackend::kAvx512;
  if (cpu.avx2) return KernelBackend::kAvx2;
  return KernelBackend::kScalar;
}

/// Parses JINFER_KERNEL_BACKEND. Aborts on a malformed token or on a
/// backend this binary/CPU cannot run — a forced backend silently falling
/// back would defeat the point of forcing it (CI parity jobs rely on
/// this).
KernelBackend ResolveRequestedBackend() {
  const char* env = std::getenv("JINFER_KERNEL_BACKEND");
  if (env == nullptr || env[0] == '\0' ||
      std::strcmp(env, "widest") == 0) {
    return WidestSupportedBackend();
  }
  KernelBackend requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = KernelBackend::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = KernelBackend::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = KernelBackend::kAvx512;
  } else {
    JINFER_CHECK(false,
                 "JINFER_KERNEL_BACKEND=%s is not one of "
                 "scalar|avx2|avx512|widest",
                 env);
    return KernelBackend::kScalar;  // Unreachable.
  }
  JINFER_CHECK(KernelBackendSupported(requested),
               "JINFER_KERNEL_BACKEND=%s requests a backend this "
               "binary/CPU cannot run",
               env);
  return requested;
}

}  // namespace

const KernelOps* InitKernelOps() {
  // Function-local static: the probe + env parse run exactly once even
  // under concurrent first use; later callers block until publication.
  static const KernelOps* ops = [] {
    const KernelOps* chosen = &OpsForSupported(ResolveRequestedBackend());
    g_active_ops.store(chosen, std::memory_order_release);
    return chosen;
  }();
  // A SetKernelBackend between our init and now may have replaced the
  // table; re-load rather than return the stale candidate.
  const KernelOps* current = g_active_ops.load(std::memory_order_relaxed);
  return current != nullptr ? current : ops;
}

}  // namespace internal

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool KernelBackendSupported(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
#if JINFER_SIMD_X86
    case KernelBackend::kAvx2:
      return DetectCpuFeatures().avx2;
    case KernelBackend::kAvx512:
      return DetectCpuFeatures().avx512;
#endif
    default:
      return false;
  }
}

std::vector<KernelBackend> SupportedKernelBackends() {
  std::vector<KernelBackend> backends = {KernelBackend::kScalar};
  if (KernelBackendSupported(KernelBackend::kAvx2)) {
    backends.push_back(KernelBackend::kAvx2);
  }
  if (KernelBackendSupported(KernelBackend::kAvx512)) {
    backends.push_back(KernelBackend::kAvx512);
  }
  return backends;
}

const KernelOps& KernelOpsFor(KernelBackend backend) {
  JINFER_CHECK(KernelBackendSupported(backend),
               "kernel backend %s unsupported on this CPU/build",
               KernelBackendName(backend));
  return internal::OpsForSupported(backend);
}

bool SetKernelBackend(KernelBackend backend) {
  if (!KernelBackendSupported(backend)) return false;
  internal::g_active_ops.store(&internal::OpsForSupported(backend),
                               std::memory_order_release);
  return true;
}

}  // namespace simd
}  // namespace util
}  // namespace jinfer
