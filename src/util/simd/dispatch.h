// Runtime-dispatched SIMD kernel backends (DESIGN.md §12.4).
//
// The word kernels behind the bitset types and the fused u± candidate
// sweep exist in up to three variants — scalar, AVX2 and AVX-512 — each
// compiled into its own TU with function-level target attributes, so the
// binary stays portable: no global -mavx flags, and nothing past SSE2
// executes until the CPUID probe has approved it. A per-process table of
// function pointers (KernelOps) selects the widest supported backend at
// first use; `JINFER_KERNEL_BACKEND` forces one instead:
//
//   scalar | avx2 | avx512   — that backend, aborting when the CPU (or the
//                              build) does not support it
//   widest                   — the default choice, spelled out (the token
//                              CI's forced-widest job uses so it stays
//                              green on any hardware)
//
// Every backend is bit-identical by construction: the u± accumulators are
// uint64 sums (associative and commutative mod 2^64), and the predicate
// kernels reduce the same AND/ANDNOT/XOR word terms — so lane-blocking
// reorders arithmetic without changing any observable column, entropy,
// or argmin pick. tests/kernels/backend_parity_test.cc replays identical
// seeds against every compiled backend to hold the line.

#ifndef JINFER_UTIL_SIMD_DISPATCH_H_
#define JINFER_UTIL_SIMD_DISPATCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd/cpu_features.h"

namespace jinfer {
namespace util {
namespace simd {

enum class KernelBackend : uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One i×j block of the fused u± candidate sweep: for every candidate
/// j ∈ [jb, je), accumulate into u_pos[j]/u_neg[j] the certainty-count
/// contributions of the streamed classes i ∈ [ib, ie):
///
///   u_neg[j] += Σ cnt[i] · [key_i ⊆ sig_j]                      (Lemma 3.4)
///   u_pos[j] += Σ cnt[i] · [key_i∩sig_j = key_j ∨
///                           ∃g: key_i∩sig_j ⊆ neg_g]     (Lemmas 3.3, 3.4)
///
/// over the class-major packed arrays of InferenceState (stride `words`).
/// Accumulating (`+=`) rather than writing makes blocks composable: the
/// tiled driver splits [0, n)×[0, n) into cache-sized blocks in any order
/// and the mod-2^64 sums land bit-identical to the single-block sweep.
/// The caller zero-fills the columns and applies the flat −1 self-class
/// correction once per candidate (see sweep.h).
struct SweepBlockArgs {
  const uint64_t* keys = nullptr;  ///< class-major cached keys, stride words
  const uint64_t* sigs = nullptr;  ///< class-major signatures, stride words
  const uint64_t* cnts = nullptr;  ///< per-class tuple counts
  const uint64_t* negs = nullptr;  ///< num_negs × words negative witnesses
  size_t num_negs = 0;
  size_t words = 1;
  size_t jb = 0, je = 0;  ///< candidate (output) range
  size_t ib = 0, ie = 0;  ///< streamed class (input) range
  uint64_t* u_pos = nullptr;  ///< full columns; the block adds into [jb, je)
  uint64_t* u_neg = nullptr;
};

/// One backend's kernel implementations. Instances are immutable process
/// globals; call sites indirect through ActiveKernelOps() once per kernel
/// invocation.
struct KernelOps {
  KernelBackend backend;
  bool (*is_subset_words)(const uint64_t* a, const uint64_t* b, size_t words);
  bool (*equal_words)(const uint64_t* a, const uint64_t* b, size_t words);
  bool (*intersects_words)(const uint64_t* a, const uint64_t* b,
                           size_t words);
  size_t (*popcount_words)(const uint64_t* a, size_t words);
  void (*sweep_block)(const SweepBlockArgs& args);
};

namespace internal {
/// Null until first use; then the chosen backend's table. The pointees are
/// immutable and fully built before publication, so a relaxed load is
/// enough on the hot path.
extern std::atomic<const KernelOps*> g_active_ops;
/// Slow path: probe the CPU, parse JINFER_KERNEL_BACKEND (aborting on a
/// malformed or unsupported value), publish and return the table.
const KernelOps* InitKernelOps();
}  // namespace internal

/// The active backend's kernel table (env override or widest supported).
inline const KernelOps& ActiveKernelOps() {
  const KernelOps* ops =
      internal::g_active_ops.load(std::memory_order_relaxed);
  return ops != nullptr ? *ops : *internal::InitKernelOps();
}

inline KernelBackend ActiveKernelBackend() {
  return ActiveKernelOps().backend;
}

/// "scalar" / "avx2" / "avx512" — the JINFER_KERNEL_BACKEND tokens.
const char* KernelBackendName(KernelBackend backend);

/// True when `backend` is both compiled into this binary and usable on
/// this CPU+OS. kScalar is always supported.
bool KernelBackendSupported(KernelBackend backend);

/// The supported backends, ascending by width. Parity tests iterate this
/// so a run on any hardware covers exactly what that hardware can attest.
std::vector<KernelBackend> SupportedKernelBackends();

/// That backend's table, independent of which one is active. The backend
/// must be supported (checked).
const KernelOps& KernelOpsFor(KernelBackend backend);

/// Forces the active backend in-process (tests, benches). Returns false —
/// leaving the active table unchanged — when unsupported. Not a hot-path
/// API: concurrent sweeps pick up the change at their next dispatch load.
bool SetKernelBackend(KernelBackend backend);

}  // namespace simd
}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_SIMD_DISPATCH_H_
