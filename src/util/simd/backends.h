// Internal: the per-backend kernel tables, one per TU. Only dispatch.cc
// and the backend TUs (scalar tail calls from the vector sweeps) include
// this; everything else goes through ActiveKernelOps().

#ifndef JINFER_UTIL_SIMD_BACKENDS_H_
#define JINFER_UTIL_SIMD_BACKENDS_H_

#include "util/simd/dispatch.h"

namespace jinfer {
namespace util {
namespace simd {
namespace internal {

// kernels_scalar.cc — the reference implementations, always compiled.
extern const KernelOps kScalarOps;
/// The scalar sweep block, callable directly: the vector backends hand it
/// their sub-lane-width candidate tails.
void SweepBlockScalar(const SweepBlockArgs& args);

#if JINFER_SIMD_X86
// kernels_avx2.cc / kernels_avx512.cc — function-level target attributes;
// safe to link anywhere, must not be *called* unless DetectCpuFeatures()
// approves. kAvx512Ops assumes VPOPCNTDQ; dispatch.cc patches in the AVX2
// popcount on CPUs with the core AVX-512 set but not that extension.
extern const KernelOps kAvx2Ops;
extern const KernelOps kAvx512Ops;
#endif

}  // namespace internal
}  // namespace simd
}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_SIMD_BACKENDS_H_
