#include "util/bitset.h"

#include <sstream>

namespace jinfer {
namespace util {

std::string SmallBitset::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  ForEachSetBit([&](size_t bit) {
    if (!first) os << ',';
    os << bit;
    first = false;
  });
  os << '}';
  return os.str();
}

}  // namespace util
}  // namespace jinfer
