// Deadline: a point on the steady clock that cooperative code checks at
// its natural yield points (slice boundaries in the SessionManager, the
// question loop in interactive_cli) — see DESIGN.md §10.
//
// Deadlines are propagated by value and never block anything themselves;
// enforcement is wherever the holder chooses to check expired(). The
// infinite deadline makes "no deadline" a first-class value, so call sites
// need no sentinel branches.

#ifndef JINFER_UTIL_DEADLINE_H_
#define JINFER_UTIL_DEADLINE_H_

#include <chrono>

namespace jinfer {
namespace util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  static Deadline Infinite() { return Deadline(Clock::time_point::max()); }

  /// Expires `budget` from now; a zero or negative budget is infinite
  /// (the options-struct convention: 0 = no deadline).
  static Deadline After(std::chrono::nanoseconds budget) {
    if (budget <= std::chrono::nanoseconds::zero()) return Infinite();
    return Deadline(Clock::now() + budget);
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }

  bool expired() const { return !infinite() && Clock::now() >= at_; }

  /// Time left; zero once expired, the maximum duration when infinite.
  std::chrono::nanoseconds remaining() const {
    if (infinite()) return std::chrono::nanoseconds::max();
    const auto now = Clock::now();
    return now >= at_ ? std::chrono::nanoseconds::zero() : at_ - now;
  }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}

  Clock::time_point at_;
};

}  // namespace util
}  // namespace jinfer

#endif  // JINFER_UTIL_DEADLINE_H_
