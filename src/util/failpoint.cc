#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/rng.h"
#include "util/string_util.h"

namespace jinfer {
namespace util {

namespace failpoint_internal {
std::atomic<uint32_t> g_armed{0};
}  // namespace failpoint_internal

namespace {

enum class Mode { kCount, kEvery, kProb, kSleep };

struct PointState {
  Mode mode = Mode::kCount;
  uint64_t n = 0;        // count: remaining trips; every: period; sleep: ms
  double p = 0;          // prob: trip probability
  Rng rng{1};            // prob: per-point deterministic stream
  FailpointStats stats;  // survives re-arming? No — reset on re-arm.
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, PointState> points;
  // Stats of disarmed points are kept so tests can read trip counts after
  // an exhausted count-mode point removed itself.
  std::unordered_map<std::string, FailpointStats> retired;
  int paused = 0;

  static Registry& Instance() {
    static Registry* registry = new Registry();  // Leaked: outlives threads.
    return *registry;
  }
};

/// One spec entry ("name=mode"). The mode grammar is documented in the
/// header; parsing is strict so a typo'd schedule fails loudly instead of
/// silently injecting nothing.
Status ParseMode(const std::string& name, std::string_view mode,
                 PointState* out) {
  auto fail = [&] {
    return Status::InvalidArgument(StrFormat(
        "failpoint %s: bad mode '%.*s' (want count:N, every:N, prob:P[:S], "
        "or sleep:MS)", name.c_str(), static_cast<int>(mode.size()),
        mode.data()));
  };
  const size_t colon = mode.find(':');
  if (colon == std::string_view::npos) return fail();
  const std::string_view kind = mode.substr(0, colon);
  const std::string arg(mode.substr(colon + 1));
  char* end = nullptr;
  if (kind == "count" || kind == "every" || kind == "sleep") {
    const unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0') return fail();
    if (n == 0 && kind != "sleep") return fail();
    out->mode = kind == "count" ? Mode::kCount
                : kind == "every" ? Mode::kEvery
                                  : Mode::kSleep;
    out->n = n;
    return Status::OK();
  }
  if (kind == "prob") {
    const std::string p_str = arg.substr(0, arg.find(':'));
    const double p = std::strtod(p_str.c_str(), &end);
    if (end == p_str.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return fail();
    }
    uint64_t seed = 1;
    const size_t seed_colon = arg.find(':');
    if (seed_colon != std::string_view::npos) {
      const std::string seed_str = arg.substr(seed_colon + 1);
      seed = std::strtoull(seed_str.c_str(), &end, 10);
      if (end == seed_str.c_str() || *end != '\0') return fail();
    }
    out->mode = Mode::kProb;
    out->p = p;
    out->rng = Rng(seed);
    return Status::OK();
  }
  return fail();
}

void ArmLocked(Registry& registry, std::string name, PointState state) {
  auto [it, inserted] = registry.points.emplace(std::move(name), PointState{});
  it->second = std::move(state);
  if (inserted) {
    failpoint_internal::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Arms from JINFER_FAILPOINTS exactly once, at the first armed-state
/// transition a process can observe (this object's construction — the
/// translation unit is linked whenever any instrumented site is).
const bool g_env_armed = [] {
  const char* spec = std::getenv("JINFER_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  Status status = Failpoints::ArmFromSpec(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "JINFER_FAILPOINTS rejected: %s\n",
                 status.ToString().c_str());
    std::abort();  // A chaos run with a typo'd schedule must not pass.
  }
  return true;
}();

}  // namespace

namespace failpoint_internal {

Status HitSlow(const char* name) {
  uint64_t sleep_ms = 0;
  Status result = Status::OK();
  {
    Registry& registry = Registry::Instance();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end()) return Status::OK();
    PointState& point = it->second;
    ++point.stats.hits;
    if (registry.paused > 0) return Status::OK();
    switch (point.mode) {
      case Mode::kCount:
        if (point.n > 0) {
          --point.n;
          ++point.stats.trips;
          result = Status::Unavailable(
              StrFormat("injected fault at %s", name));
          if (point.n == 0) {
            // Exhausted: retire so the fast path goes quiet again.
            registry.retired[it->first] = point.stats;
            registry.points.erase(it);
            g_armed.fetch_sub(1, std::memory_order_relaxed);
          }
        }
        break;
      case Mode::kEvery:
        if (point.stats.hits % point.n == 0) {
          ++point.stats.trips;
          result = Status::Unavailable(
              StrFormat("injected fault at %s", name));
        }
        break;
      case Mode::kProb:
        if (point.rng.NextBool(point.p)) {
          ++point.stats.trips;
          result = Status::Unavailable(
              StrFormat("injected fault at %s", name));
        }
        break;
      case Mode::kSleep:
        ++point.stats.trips;
        sleep_ms = point.n;
        break;
    }
  }
  // Sleep outside the registry lock: a slow point must not serialize
  // unrelated points (or block Disarm) while it dawdles.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return result;
}

}  // namespace failpoint_internal

Status Failpoints::ArmFromSpec(std::string_view spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(StrFormat(
          "failpoint spec entry '%.*s' is not name=mode",
          static_cast<int>(entry.size()), entry.data()));
    }
    JINFER_RETURN_NOT_OK(Arm(std::string(entry.substr(0, eq)),
                             std::string(entry.substr(eq + 1))));
  }
  return Status::OK();
}

Status Failpoints::Arm(const std::string& name, const std::string& mode) {
  PointState state;
  JINFER_RETURN_NOT_OK(ParseMode(name, mode, &state));
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.retired.erase(name);
  ArmLocked(registry, name, std::move(state));
  return Status::OK();
}

void Failpoints::Disarm(const std::string& name) {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return;
  registry.retired[name] = it->second.stats;
  registry.points.erase(it);
  failpoint_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoints::Reset() {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [name, point] : registry.points) {
    registry.retired[name] = point.stats;
    failpoint_internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.points.clear();
}

FailpointStats Failpoints::Stats(const std::string& name) {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it != registry.points.end()) return it->second.stats;
  auto retired = registry.retired.find(name);
  if (retired != registry.retired.end()) return retired->second;
  return FailpointStats{};
}

Failpoints::PauseScope::PauseScope() {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  ++registry.paused;
}

Failpoints::PauseScope::~PauseScope() {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  --registry.paused;
}

}  // namespace util
}  // namespace jinfer
