#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/string_util.h"

namespace jinfer {
namespace util {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoStatusFromErrno(errno, "fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// "localhost" and "" mean loopback; otherwise the host must be a dotted
/// quad (the server binds addresses, it does not resolve names).
Result<in_addr_t> ResolveHost(const std::string& host) {
  if (host.empty() || host == "localhost") return htonl(INADDR_LOOPBACK);
  if (host == "0.0.0.0") return htonl(INADDR_ANY);
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("not an IPv4 address: '%s'", host.c_str()));
  }
  return addr.s_addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    return Status::InvalidArgument(
        StrFormat("endpoint '%s' is not host:port", spec.c_str()));
  }
  Endpoint out;
  out.host = spec.substr(0, colon);
  long port = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("endpoint '%s' has a non-numeric port", spec.c_str()));
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument(
          StrFormat("endpoint '%s' port out of range", spec.c_str()));
    }
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog) {
  JINFER_ASSIGN_OR_RETURN(const in_addr_t addr, ResolveHost(host));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return IoStatusFromErrno(errno, "socket()");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = addr;
  sin.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) <
      0) {
    return IoStatusFromErrno(
        errno, StrFormat("bind(%s:%u)", host.c_str(), unsigned{port}));
  }
  if (::listen(sock.fd(), backlog) < 0) {
    return IoStatusFromErrno(errno, "listen()");
  }
  JINFER_RETURN_NOT_OK(SetNonBlocking(sock.fd()));
  return sock;
}

Result<uint16_t> BoundPort(const Socket& socket) {
  sockaddr_in sin{};
  socklen_t len = sizeof(sin);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&sin), &len) <
      0) {
    return IoStatusFromErrno(errno, "getsockname()");
  }
  return static_cast<uint16_t>(ntohs(sin.sin_port));
}

Result<Socket> AcceptTcp(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return IoStatusFromErrno(errno, "accept()");
  Socket sock(fd);
  JINFER_RETURN_NOT_OK(SetNonBlocking(fd));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  JINFER_ASSIGN_OR_RETURN(const in_addr_t addr, ResolveHost(host));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return IoStatusFromErrno(errno, "socket()");
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = addr;
  sin.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) <
      0) {
    return IoStatusFromErrno(
        errno, StrFormat("connect(%s:%u)", host.c_str(), unsigned{port}));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status SetIoTimeout(const Socket& socket, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) <
          0 ||
      ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) <
          0) {
    return IoStatusFromErrno(errno, "setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
  }
  return Status::OK();
}

Result<size_t> ReadSome(const Socket& socket, std::span<uint8_t> buf) {
  while (true) {
    const ssize_t n = ::recv(socket.fd(), buf.data(), buf.size(), 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return IoStatusFromErrno(errno, "recv()");
  }
}

Result<size_t> WriteSome(const Socket& socket, std::span<const uint8_t> buf) {
  while (true) {
    const ssize_t n =
        ::send(socket.fd(), buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return IoStatusFromErrno(errno, "send()");
  }
}

Status ReadExact(const Socket& socket, std::span<uint8_t> buf) {
  size_t done = 0;
  while (done < buf.size()) {
    JINFER_ASSIGN_OR_RETURN(const size_t n,
                            ReadSome(socket, buf.subspan(done)));
    if (n == 0) {
      return Status::IoError(StrFormat(
          "connection closed mid-read (%zu of %zu bytes)", done, buf.size()));
    }
    done += n;
  }
  return Status::OK();
}

Status WriteAll(const Socket& socket, std::span<const uint8_t> buf) {
  size_t done = 0;
  while (done < buf.size()) {
    JINFER_ASSIGN_OR_RETURN(const size_t n,
                            WriteSome(socket, buf.subspan(done)));
    done += n;
  }
  return Status::OK();
}

WakePipe::WakePipe() {
  int fds[2];
  JINFER_CHECK(::pipe(fds) == 0, "pipe(): %s", std::strerror(errno));
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  // Nonblocking on both ends: Notify from a signal handler must never
  // block, and Drain reads until empty.
  JINFER_CHECK(SetNonBlocking(fds[0]).ok() && SetNonBlocking(fds[1]).ok(),
               "wake pipe O_NONBLOCK");
}

void WakePipe::Notify() {
  const uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(write_end_.fd(), &byte, 1);
}

void WakePipe::Drain() {
  uint8_t sink[64];
  while (::read(read_end_.fd(), sink, sizeof(sink)) > 0) {
  }
}

}  // namespace util
}  // namespace jinfer
