// Frame codec for the serving front end's binary session protocol
// (DESIGN.md §11.1).
//
// Every message travels as one frame: a fixed little-endian header carrying
// magic / version / type / payload length, followed by the payload bytes,
// whose util::Checksum64 digest is stored in the header — the same
// magic + length + checksum discipline as the index file format
// (store/index_file.h), shrunk to a streamed unit:
//
//   [ FrameHeader ]   24 bytes: magic "JFRM", version, type, flags,
//                     payload_bytes, Checksum64 of the payload
//   [ payload ]       payload_bytes bytes, message-specific (protocol.h)
//
// Robustness contract: decoding is pure over byte spans and never trusts a
// length before validating it — an oversized or negative-looking
// payload_bytes is rejected *before* any allocation, so a hostile 4 GiB
// length prefix costs the server 24 bytes of reads, not 4 GiB of heap.
// Every malformed shape (bad magic, unsupported version, unknown type,
// oversized length, checksum mismatch) decodes to a distinct ParseError
// message; the connection layer answers with a typed error frame and
// closes (never a crash, never a wedged worker — tests/server/
// frame_codec_test.cc walks the corpus).
//
// WireReader / WireWriter are the payload primitives: bounds-checked
// little-endian scalars and u32-length-prefixed strings, mirroring the
// names-section idiom of the index file.

#ifndef JINFER_SERVER_FRAME_H_
#define JINFER_SERVER_FRAME_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace jinfer {
namespace server {

inline constexpr uint32_t kFrameMagic = 0x4d52464a;  // "JFRM" on LE.
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling on a frame payload. OpenSession carries CSV text, so the
/// bound is generous; anything larger is a protocol error by definition
/// (ServerOptions may lower it per deployment, never raise it).
inline constexpr uint32_t kMaxFramePayload = 32u << 20;  // 32 MiB

/// Frame types. Requests are low numbers, responses have the high bit of
/// the low nibble region set (0x40) so a stray request/response swap is an
/// immediate protocol error rather than a misparse.
enum class FrameType : uint8_t {
  // Client → server.
  kOpenSession = 0x01,
  kNextQuestion = 0x02,
  kAnswer = 0x03,
  kCloseSession = 0x04,
  kStats = 0x05,
  kMetrics = 0x06,
  // Server → client.
  kOpenOk = 0x41,
  kQuestion = 0x42,
  kAnswerOk = 0x43,
  kCloseOk = 0x44,
  kStatsOk = 0x45,
  kError = 0x46,
  kMetricsOk = 0x47,
};

/// True for the types a client may send.
bool IsRequestType(uint8_t type);
/// True for any defined type (request or response).
bool IsKnownFrameType(uint8_t type);
const char* FrameTypeName(FrameType type);

struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t flags = 0;         ///< Reserved; must be written as zero.
  uint32_t payload_bytes = 0;
  uint32_t reserved = 0;      ///< Keeps the checksum 8-byte aligned.
  uint64_t checksum = 0;      ///< util::Checksum64 of the payload bytes.
};
static_assert(sizeof(FrameHeader) == 24);
static_assert(std::is_trivially_copyable_v<FrameHeader>);

inline constexpr size_t kFrameHeaderBytes = sizeof(FrameHeader);

/// A decoded frame: type plus owned payload bytes.
struct Frame {
  FrameType type;
  std::vector<uint8_t> payload;
};

/// Encodes a complete frame (header + payload) ready for the wire.
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 std::span<const uint8_t> payload);

/// Validates the 24 header bytes: magic, version, known type, and
/// payload_bytes <= max_payload — everything checkable before the payload
/// arrives, so a connection can reject a poison length prefix without
/// buffering anything. `max_payload` caps at kMaxFramePayload regardless.
util::Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> bytes,
                                            uint32_t max_payload);

/// Verifies the payload of a validated header (length + checksum) and
/// returns the assembled frame (payload copied out of `payload`).
util::Result<Frame> DecodeFramePayload(const FrameHeader& header,
                                       std::span<const uint8_t> payload);

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  /// u32 length prefix + raw bytes (the names-section idiom).
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  std::vector<uint8_t> Take() && { return std::move(bytes_); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  void AppendLe(const void* p, size_t n) {
    // The library already commits to little-endian hosts (store layer
    // refuses foreign byte order), so a memcpy IS the LE encoding.
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a payload span. Every method fails with
/// ParseError instead of reading past the end; Finish() rejects trailing
/// garbage so a payload must parse exactly.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  util::Result<uint8_t> U8();
  util::Result<uint32_t> U32();
  util::Result<uint64_t> U64();
  /// A u32-length-prefixed string; the length must fit in the remainder.
  util::Result<std::string> Str();

  /// OK iff every byte was consumed.
  util::Status Finish() const;

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  util::Status Need(size_t n) const;

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace server
}  // namespace jinfer

#endif  // JINFER_SERVER_FRAME_H_
