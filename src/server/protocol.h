// Message bodies of the binary session protocol (DESIGN.md §11.1): the
// typed payloads that travel inside frames (frame.h), one struct + encode /
// decode pair per frame type.
//
// The session vocabulary is exactly the step API's: OpenSession names the
// instance (the client uploads both relations as CSV text — the server
// fingerprints them, so repeated opens of the same data share one index
// through the tiered IndexCache), NextQuestion returns the strategy's pick
// as a class id plus the representative tuple pair rendered server-side,
// Answer applies one label, CloseSession returns the final predicate.
// Session ids are opaque u64 handles drawn from the hosting runtime and
// validated per connection: a frame naming a session the connection does
// not own is a protocol error, so one tenant can never touch another's
// transcript.
//
// ErrorBody carries the library's StatusCode taxonomy onto the wire plus
// two flags: kErrorFlagRetryLater marks load shedding (kResourceExhausted
// — the server is refusing, not failing; try again later) and
// kErrorFlagWillClose warns that the server closes the connection after
// this frame (malformed input, deadline expiry).
//
// Decoders consume their payload exactly (WireReader::Finish), so every
// trailing-garbage or truncated-field shape is a ParseError — fed by the
// malformed-frame corpus in tests/server/frame_codec_test.cc.

#ifndef JINFER_SERVER_PROTOCOL_H_
#define JINFER_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "server/frame.h"
#include "util/result.h"

namespace jinfer {
namespace server {

struct OpenSessionBody {
  std::string strategy;  ///< Paper abbreviation: BU, TD, L1S, L2S, RND, EG.
  uint64_t seed = 0;     ///< RNG seed (only the RND strategy consumes it).
  uint8_t compress = 1;  ///< Build the index with signature compression.
  std::string r_name, p_name;  ///< Relation names for rendering.
  std::string r_csv, p_csv;    ///< The instance, as CSV text.
};

struct OpenOkBody {
  uint64_t session_id = 0;
  uint64_t num_classes = 0;
  uint64_t num_tuples = 0;
  uint8_t index_tier = 0;  ///< runtime::IndexTier of the serving index.
};

struct NextQuestionBody {
  uint64_t session_id = 0;
};

struct QuestionBody {
  uint64_t session_id = 0;
  uint8_t finished = 0;  ///< 1: no question follows, the session is done.
  uint64_t question_index = 0;  ///< 0-based interaction number.
  uint32_t class_id = 0;
  std::string r_text, p_text;  ///< Representative tuple pair, rendered.
  /// Current hypothesis T(S+): the Ω-formatted string plus the raw
  /// predicate words (for bit-exact transcript comparison client-side).
  std::string predicate_text;
  uint64_t predicate_words[4] = {0, 0, 0, 0};
};

struct AnswerBody {
  uint64_t session_id = 0;
  uint8_t label = 0;  ///< 1 = positive, 0 = negative.
};

struct AnswerOkBody {
  uint64_t session_id = 0;
  std::string predicate_text;
  uint64_t predicate_words[4] = {0, 0, 0, 0};
};

struct CloseSessionBody {
  uint64_t session_id = 0;
};

struct CloseOkBody {
  uint64_t session_id = 0;
  uint64_t num_interactions = 0;
  std::string predicate_text;
  uint64_t predicate_words[4] = {0, 0, 0, 0};
};

struct StatsBody {};  ///< Stats request carries no fields.

/// StatsOk payload version. v1 carried the bare counters; v2 prefixes the
/// version word and appends latency-histogram summaries. Decoders reject
/// any other version with ParseError — an operator tool reading a newer
/// server fails loudly instead of misparsing.
inline constexpr uint32_t kStatsOkVersion = 2;

/// One latency histogram, reduced to count/sum/p50/p99 (the obs layer's
/// HistogramSummary, on the wire). Quantiles travel as IEEE doubles in
/// bit_cast'd u64 words.
struct StatsHistogramSummary {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Server-wide observability snapshot, the operator's curl-able counters.
struct StatsOkBody {
  uint32_t version = kStatsOkVersion;
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_open = 0;
  uint64_t sessions_completed = 0;
  uint64_t sessions_aborted = 0;   ///< Dropped with their connection.
  uint64_t sessions_reaped = 0;    ///< Idle-timeout evictions.
  uint64_t sessions_shed = 0;      ///< Refused by admission control.
  uint64_t frames_read = 0;
  uint64_t frames_written = 0;
  uint64_t protocol_errors = 0;    ///< Malformed frames answered + closed.
  uint64_t deadline_closes = 0;    ///< Connections closed by a deadline.
  uint64_t cache_hits = 0;         ///< IndexCache memory-tier hits.
  uint64_t cache_builds = 0;       ///< Full index builds run.
  /// v2: every histogram in the global registry, summarized (obs
  /// exposition's SummarizeHistograms).
  std::vector<StatsHistogramSummary> histograms;
};

struct MetricsBody {};  ///< Metrics request carries no fields.

/// Full Prometheus text exposition of the server process's registry —
/// what a scraper or `interactive_cli --connect` pulls while sessions run.
struct MetricsOkBody {
  std::string text;
};

inline constexpr uint8_t kErrorFlagRetryLater = 1u << 0;
inline constexpr uint8_t kErrorFlagWillClose = 1u << 1;

struct ErrorBody {
  uint32_t code = 0;  ///< util::StatusCode, numerically.
  uint8_t flags = 0;  ///< kErrorFlag* bits.
  std::string message;
};

// Encoders return the payload bytes (frame framing is EncodeFrame's job);
// decoders parse a payload span exactly or fail with ParseError.
std::vector<uint8_t> Encode(const OpenSessionBody& body);
std::vector<uint8_t> Encode(const OpenOkBody& body);
std::vector<uint8_t> Encode(const NextQuestionBody& body);
std::vector<uint8_t> Encode(const QuestionBody& body);
std::vector<uint8_t> Encode(const AnswerBody& body);
std::vector<uint8_t> Encode(const AnswerOkBody& body);
std::vector<uint8_t> Encode(const CloseSessionBody& body);
std::vector<uint8_t> Encode(const CloseOkBody& body);
std::vector<uint8_t> Encode(const StatsBody& body);
std::vector<uint8_t> Encode(const StatsOkBody& body);
std::vector<uint8_t> Encode(const MetricsBody& body);
std::vector<uint8_t> Encode(const MetricsOkBody& body);
std::vector<uint8_t> Encode(const ErrorBody& body);

util::Result<OpenSessionBody> DecodeOpenSession(
    std::span<const uint8_t> payload);
util::Result<OpenOkBody> DecodeOpenOk(std::span<const uint8_t> payload);
util::Result<NextQuestionBody> DecodeNextQuestion(
    std::span<const uint8_t> payload);
util::Result<QuestionBody> DecodeQuestion(std::span<const uint8_t> payload);
util::Result<AnswerBody> DecodeAnswer(std::span<const uint8_t> payload);
util::Result<AnswerOkBody> DecodeAnswerOk(std::span<const uint8_t> payload);
util::Result<CloseSessionBody> DecodeCloseSession(
    std::span<const uint8_t> payload);
util::Result<CloseOkBody> DecodeCloseOk(std::span<const uint8_t> payload);
util::Result<StatsBody> DecodeStats(std::span<const uint8_t> payload);
util::Result<StatsOkBody> DecodeStatsOk(std::span<const uint8_t> payload);
util::Result<MetricsBody> DecodeMetrics(std::span<const uint8_t> payload);
util::Result<MetricsOkBody> DecodeMetricsOk(
    std::span<const uint8_t> payload);
util::Result<ErrorBody> DecodeError(std::span<const uint8_t> payload);

/// Packs / unpacks a JoinPredicate into the four wire words.
void PredicateToWords(const core::JoinPredicate& predicate,
                      uint64_t words[4]);
core::JoinPredicate PredicateFromWords(const uint64_t words[4]);

}  // namespace server
}  // namespace jinfer

#endif  // JINFER_SERVER_PROTOCOL_H_
