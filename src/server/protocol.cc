#include "server/protocol.h"

#include <bit>
#include <utility>

#include "util/string_util.h"

namespace jinfer {
namespace server {

namespace {

void PutWords(WireWriter& w, const uint64_t words[4]) {
  for (int i = 0; i < 4; ++i) w.U64(words[i]);
}

util::Status GetWords(WireReader& r, uint64_t words[4]) {
  for (int i = 0; i < 4; ++i) {
    JINFER_ASSIGN_OR_RETURN(words[i], r.U64());
  }
  return util::Status::OK();
}

}  // namespace

void PredicateToWords(const core::JoinPredicate& predicate,
                      uint64_t words[4]) {
  for (size_t i = 0; i < core::JoinPredicate::kWords; ++i) {
    words[i] = predicate.word(i);
  }
}

core::JoinPredicate PredicateFromWords(const uint64_t words[4]) {
  core::JoinPredicate predicate;
  for (size_t w = 0; w < core::JoinPredicate::kWords; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      predicate.Set(w * 64 + static_cast<size_t>(bit));
      bits &= bits - 1;
    }
  }
  return predicate;
}

std::vector<uint8_t> Encode(const OpenSessionBody& body) {
  WireWriter w;
  w.Str(body.strategy);
  w.U64(body.seed);
  w.U8(body.compress);
  w.Str(body.r_name);
  w.Str(body.p_name);
  w.Str(body.r_csv);
  w.Str(body.p_csv);
  return std::move(w).Take();
}

util::Result<OpenSessionBody> DecodeOpenSession(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  OpenSessionBody body;
  JINFER_ASSIGN_OR_RETURN(body.strategy, r.Str());
  JINFER_ASSIGN_OR_RETURN(body.seed, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.compress, r.U8());
  JINFER_ASSIGN_OR_RETURN(body.r_name, r.Str());
  JINFER_ASSIGN_OR_RETURN(body.p_name, r.Str());
  JINFER_ASSIGN_OR_RETURN(body.r_csv, r.Str());
  JINFER_ASSIGN_OR_RETURN(body.p_csv, r.Str());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const OpenOkBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  w.U64(body.num_classes);
  w.U64(body.num_tuples);
  w.U8(body.index_tier);
  return std::move(w).Take();
}

util::Result<OpenOkBody> DecodeOpenOk(std::span<const uint8_t> payload) {
  WireReader r(payload);
  OpenOkBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.num_classes, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.num_tuples, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.index_tier, r.U8());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const NextQuestionBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  return std::move(w).Take();
}

util::Result<NextQuestionBody> DecodeNextQuestion(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  NextQuestionBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const QuestionBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  w.U8(body.finished);
  w.U64(body.question_index);
  w.U32(body.class_id);
  w.Str(body.r_text);
  w.Str(body.p_text);
  w.Str(body.predicate_text);
  PutWords(w, body.predicate_words);
  return std::move(w).Take();
}

util::Result<QuestionBody> DecodeQuestion(std::span<const uint8_t> payload) {
  WireReader r(payload);
  QuestionBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.finished, r.U8());
  JINFER_ASSIGN_OR_RETURN(body.question_index, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.class_id, r.U32());
  JINFER_ASSIGN_OR_RETURN(body.r_text, r.Str());
  JINFER_ASSIGN_OR_RETURN(body.p_text, r.Str());
  JINFER_ASSIGN_OR_RETURN(body.predicate_text, r.Str());
  JINFER_RETURN_NOT_OK(GetWords(r, body.predicate_words));
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const AnswerBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  w.U8(body.label);
  return std::move(w).Take();
}

util::Result<AnswerBody> DecodeAnswer(std::span<const uint8_t> payload) {
  WireReader r(payload);
  AnswerBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.label, r.U8());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const AnswerOkBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  w.Str(body.predicate_text);
  PutWords(w, body.predicate_words);
  return std::move(w).Take();
}

util::Result<AnswerOkBody> DecodeAnswerOk(std::span<const uint8_t> payload) {
  WireReader r(payload);
  AnswerOkBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.predicate_text, r.Str());
  JINFER_RETURN_NOT_OK(GetWords(r, body.predicate_words));
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const CloseSessionBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  return std::move(w).Take();
}

util::Result<CloseSessionBody> DecodeCloseSession(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  CloseSessionBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const CloseOkBody& body) {
  WireWriter w;
  w.U64(body.session_id);
  w.U64(body.num_interactions);
  w.Str(body.predicate_text);
  PutWords(w, body.predicate_words);
  return std::move(w).Take();
}

util::Result<CloseOkBody> DecodeCloseOk(std::span<const uint8_t> payload) {
  WireReader r(payload);
  CloseOkBody body;
  JINFER_ASSIGN_OR_RETURN(body.session_id, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.num_interactions, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.predicate_text, r.Str());
  JINFER_RETURN_NOT_OK(GetWords(r, body.predicate_words));
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const StatsBody&) { return {}; }

util::Result<StatsBody> DecodeStats(std::span<const uint8_t> payload) {
  WireReader r(payload);
  JINFER_RETURN_NOT_OK(r.Finish());
  return StatsBody{};
}

std::vector<uint8_t> Encode(const StatsOkBody& body) {
  WireWriter w;
  w.U32(body.version);
  w.U64(body.connections_accepted);
  w.U64(body.connections_open);
  w.U64(body.sessions_opened);
  w.U64(body.sessions_open);
  w.U64(body.sessions_completed);
  w.U64(body.sessions_aborted);
  w.U64(body.sessions_reaped);
  w.U64(body.sessions_shed);
  w.U64(body.frames_read);
  w.U64(body.frames_written);
  w.U64(body.protocol_errors);
  w.U64(body.deadline_closes);
  w.U64(body.cache_hits);
  w.U64(body.cache_builds);
  w.U32(static_cast<uint32_t>(body.histograms.size()));
  for (const StatsHistogramSummary& h : body.histograms) {
    w.Str(h.name);
    w.U64(h.count);
    w.U64(h.sum);
    w.U64(std::bit_cast<uint64_t>(h.p50));
    w.U64(std::bit_cast<uint64_t>(h.p99));
  }
  return std::move(w).Take();
}

util::Result<StatsOkBody> DecodeStatsOk(std::span<const uint8_t> payload) {
  WireReader r(payload);
  StatsOkBody body;
  JINFER_ASSIGN_OR_RETURN(body.version, r.U32());
  if (body.version != kStatsOkVersion) {
    return util::Status::ParseError(util::StrFormat(
        "unsupported StatsOk payload version %u (this build speaks %u)",
        body.version, kStatsOkVersion));
  }
  JINFER_ASSIGN_OR_RETURN(body.connections_accepted, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.connections_open, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.sessions_opened, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.sessions_open, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.sessions_completed, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.sessions_aborted, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.sessions_reaped, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.sessions_shed, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.frames_read, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.frames_written, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.protocol_errors, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.deadline_closes, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.cache_hits, r.U64());
  JINFER_ASSIGN_OR_RETURN(body.cache_builds, r.U64());
  JINFER_ASSIGN_OR_RETURN(const uint32_t num_histograms, r.U32());
  // Each entry is at least 4 (name length) + 32 bytes; the remainder bound
  // rejects a hostile count before any reserve.
  if (num_histograms > r.remaining() / 36) {
    return util::Status::ParseError(util::StrFormat(
        "StatsOk histogram count %u exceeds the %zu-byte remainder",
        num_histograms, r.remaining()));
  }
  body.histograms.reserve(num_histograms);
  for (uint32_t i = 0; i < num_histograms; ++i) {
    StatsHistogramSummary h;
    JINFER_ASSIGN_OR_RETURN(h.name, r.Str());
    JINFER_ASSIGN_OR_RETURN(h.count, r.U64());
    JINFER_ASSIGN_OR_RETURN(h.sum, r.U64());
    JINFER_ASSIGN_OR_RETURN(const uint64_t p50_bits, r.U64());
    JINFER_ASSIGN_OR_RETURN(const uint64_t p99_bits, r.U64());
    h.p50 = std::bit_cast<double>(p50_bits);
    h.p99 = std::bit_cast<double>(p99_bits);
    body.histograms.push_back(std::move(h));
  }
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const MetricsBody&) { return {}; }

util::Result<MetricsBody> DecodeMetrics(std::span<const uint8_t> payload) {
  WireReader r(payload);
  JINFER_RETURN_NOT_OK(r.Finish());
  return MetricsBody{};
}

std::vector<uint8_t> Encode(const MetricsOkBody& body) {
  WireWriter w;
  w.Str(body.text);
  return std::move(w).Take();
}

util::Result<MetricsOkBody> DecodeMetricsOk(
    std::span<const uint8_t> payload) {
  WireReader r(payload);
  MetricsOkBody body;
  JINFER_ASSIGN_OR_RETURN(body.text, r.Str());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

std::vector<uint8_t> Encode(const ErrorBody& body) {
  WireWriter w;
  w.U32(body.code);
  w.U8(body.flags);
  w.Str(body.message);
  return std::move(w).Take();
}

util::Result<ErrorBody> DecodeError(std::span<const uint8_t> payload) {
  WireReader r(payload);
  ErrorBody body;
  JINFER_ASSIGN_OR_RETURN(body.code, r.U32());
  JINFER_ASSIGN_OR_RETURN(body.flags, r.U8());
  JINFER_ASSIGN_OR_RETURN(body.message, r.Str());
  JINFER_RETURN_NOT_OK(r.Finish());
  return body;
}

}  // namespace server
}  // namespace jinfer
