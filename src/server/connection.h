// Connection: the per-socket state machine of the serving front end
// (DESIGN.md §11.2).
//
// A connection assembles frames from a nonblocking socket, hands exactly
// one frame at a time to the processing pool, and drains response bytes
// back out — all driven by the server's poll loop (server.cc), which is the
// only thread that touches this object. The lifecycle hardening lives
// here:
//
//   read deadline   armed while a frame is partially received — a client
//                   that trickles a header one byte per minute is closed
//                   with kDeadlineExceeded, not allowed to hold a slot;
//   write deadline  armed while response bytes are pending — a client that
//                   stops reading is closed, not allowed to wedge a worker
//                   or grow the buffer;
//   idle timeout    armed between frames — an abandoned connection (client
//                   vanished mid-question) is closed and its hosted
//                   session aborted, releasing the IndexCache pin;
//   write cap       Enqueue refuses to buffer past write_buffer_cap, the
//                   slow-client bound (kResourceExhausted close);
//   framing errors  every malformed shape surfaces as ParseError from
//                   OnReadable — the server answers with a typed error
//                   frame and closes; oversized length prefixes are
//                   rejected before any payload allocation (frame.h).
//
// The failpoints server.conn.read / server.conn.write / server.frame.decode
// fire at the exact syscall / decode edges and are treated as the injected
// equivalent of a broken socket — the connection dies, nothing else does
// (tests/chaos/server_chaos_test.cc).

#ifndef JINFER_SERVER_CONNECTION_H_
#define JINFER_SERVER_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "server/frame.h"
#include "util/result.h"
#include "util/socket.h"

namespace jinfer {
namespace server {

/// The caps and budgets a connection enforces (set from ServerOptions).
struct ConnectionLimits {
  uint32_t max_frame_payload = kMaxFramePayload;
  size_t write_buffer_cap = 4u << 20;
  std::chrono::milliseconds read_deadline{5000};
  std::chrono::milliseconds write_deadline{5000};
  std::chrono::milliseconds idle_timeout{60000};
};

class Connection {
 public:
  using Clock = std::chrono::steady_clock;

  Connection(util::Socket sock, uint64_t generation, ConnectionLimits limits)
      : sock_(std::move(sock)),
        generation_(generation),
        limits_(limits),
        last_activity_(Clock::now()) {}

  struct ReadEvent {
    enum Kind {
      kNoProgress,  ///< Nothing complete yet (would block, or mid-frame).
      kFrame,       ///< One complete, checksum-valid frame.
      kPeerClosed,  ///< Orderly EOF at a frame boundary.
    };
    Kind kind = kNoProgress;
    Frame frame;
  };

  /// Pulls bytes off the socket and assembles at most one frame. Errors:
  /// ParseError for any malformed framing (including EOF mid-frame) —
  /// answer with a typed error and close; kIoError for a broken socket or
  /// a tripped read/decode failpoint — close silently.
  util::Result<ReadEvent> OnReadable();

  /// Buffers an encoded frame for writing. False when the write-buffer cap
  /// would be exceeded (slow client) — the caller closes the connection.
  bool Enqueue(std::span<const uint8_t> bytes);

  /// Writes as much pending output as the socket accepts. Returns true
  /// when the buffer fully drained. kIoError on breakage or a tripped
  /// write failpoint.
  util::Result<bool> OnWritable();

  /// Poll interest.
  bool wants_read() const { return !busy_ && !close_after_flush_; }
  bool wants_write() const { return out_pos_ < out_.size(); }

  /// The earliest enforcement point among the armed deadlines, or
  /// time_point::max() when nothing is armed. `ExpiredReason` names the
  /// deadline that has passed (nullptr when none has).
  Clock::time_point NextDeadline() const;
  const char* ExpiredReason() const;

  /// Marks a dispatched frame: reading pauses until OnWorkDone.
  void BeginWork() { busy_ = true; }
  /// Completion arrived (response already Enqueued by the caller).
  void OnWorkDone() {
    busy_ = false;
    last_activity_ = Clock::now();
  }
  bool busy() const { return busy_; }

  /// After this, the connection flushes its buffer and is then closed by
  /// the server (no further reads are processed).
  void CloseAfterFlush() { close_after_flush_ = true; }
  bool close_after_flush() const { return close_after_flush_; }

  const util::Socket& sock() const { return sock_; }
  uint64_t generation() const { return generation_; }

  /// The hosted session bound to this connection (0 = none).
  uint64_t session_id() const { return session_id_; }
  void BindSession(uint64_t id) { session_id_ = id; }
  void UnbindSession() { session_id_ = 0; }

 private:
  util::Socket sock_;
  uint64_t generation_;
  ConnectionLimits limits_;

  // Inbound: header bytes, then payload bytes, then a decoded frame.
  std::vector<uint8_t> in_;
  std::optional<FrameHeader> pending_header_;
  Clock::time_point frame_start_{};  ///< Set while a frame is partial.

  // Outbound: one flat buffer with a drain cursor; compacted when empty.
  std::vector<uint8_t> out_;
  size_t out_pos_ = 0;
  Clock::time_point write_start_{};  ///< Set while output is pending.

  Clock::time_point last_activity_;
  bool busy_ = false;
  bool close_after_flush_ = false;
  uint64_t session_id_ = 0;
};

}  // namespace server
}  // namespace jinfer

#endif  // JINFER_SERVER_CONNECTION_H_
