// Client: the thin blocking counterpart of the serving front end — one
// socket, one session, synchronous request/response frames (DESIGN.md
// §11.1). This is what `interactive_cli --connect host:port` runs, what
// the integration / chaos tests drive real round trips with, and the
// reference implementation for anyone speaking the protocol from another
// language.
//
// Error frames decode back into the library's own Status taxonomy: the
// code travels numerically, so a server-side kResourceExhausted refusal
// IS kResourceExhausted here, and util::RetryCall composes with it the
// same way it composes with a local cache fault. RetryLater(status) tells
// a caller whether the server said "again later" (the RETRY_LATER flag)
// as opposed to "you did something wrong".

#ifndef JINFER_SERVER_CLIENT_H_
#define JINFER_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "server/frame.h"
#include "server/protocol.h"
#include "util/result.h"
#include "util/socket.h"

namespace jinfer {
namespace server {

/// True when `status` came off the wire carrying kErrorFlagRetryLater —
/// the server shed load or hit a transient fault; retry with backoff.
bool RetryLater(const util::Status& status);

class Client {
 public:
  struct Options {
    /// Whole-call budget for each blocking read/write on the socket; an
    /// expiry surfaces as kUnavailable (transient, like the server's own
    /// taxonomy). Zero = block forever.
    std::chrono::milliseconds io_timeout{10000};

    /// Response frames larger than this are a protocol error client-side
    /// (same pre-allocation rejection the server applies to requests).
    uint32_t max_frame_payload = kMaxFramePayload;
  };

  /// Connects (blocking) to host:port.
  static util::Result<Client> Connect(const std::string& host, uint16_t port,
                                      Options options);
  static util::Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Opens a session; remembers its id for the calls below.
  util::Result<OpenOkBody> OpenSession(const OpenSessionBody& body);

  /// Asks for the next question. finished=1 means the inference is done —
  /// follow with CloseSession for the final predicate.
  util::Result<QuestionBody> NextQuestion();

  /// Labels the pending question. kInconsistentSample leaves it pending.
  util::Result<AnswerOkBody> Answer(bool positive);

  /// Closes the session and returns the final predicate + interaction
  /// count. Clears the remembered session id.
  util::Result<CloseOkBody> CloseSession();

  /// The server's counters (no session required).
  util::Result<StatsOkBody> ServerStats();

  /// The server's full Prometheus text exposition (no session required).
  util::Result<MetricsOkBody> ServerMetrics();

  uint64_t session_id() const { return session_id_; }
  const util::Socket& sock() const { return sock_; }

  /// The raw exchange: send one request frame, read one response frame.
  /// An kError response decodes into its carried Status. Exposed for the
  /// protocol tests (malformed-frame corpus, half-written frames).
  util::Result<Frame> RoundTrip(FrameType type,
                                std::span<const uint8_t> payload);

 private:
  Client(util::Socket sock, Options options)
      : sock_(std::move(sock)), options_(options) {}

  util::Result<Frame> ReadResponse();

  util::Socket sock_;
  Options options_;
  uint64_t session_id_ = 0;
};

}  // namespace server
}  // namespace jinfer

#endif  // JINFER_SERVER_CLIENT_H_
