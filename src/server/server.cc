#include "server/server.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "core/strategy.h"
#include "obs/exposition.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/csv.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace jinfer {
namespace server {

namespace {

/// Registry handles for the server's counters and gauges, dual-written
/// beside the StatsOkBody counter struct under stats_mu_ (DESIGN.md §13.1).
/// Gauges are refreshed by the event loop, which owns the figures.
struct ServerMetrics {
  obs::Counter& connections_accepted;
  obs::Counter& frames_read;
  obs::Counter& frames_written;
  obs::Counter& protocol_errors;
  obs::Counter& deadline_closes;
  obs::Counter& work_shed;
  obs::Gauge& connections_open;
  obs::Gauge& sessions_open;
  obs::Gauge& pending_work;
  obs::Histogram& frame_decode_nanos;
  obs::Histogram& frame_queue_nanos;
  obs::Histogram& frame_execute_nanos;

  static ServerMetrics& Get() {
    static ServerMetrics* m = new ServerMetrics{
        obs::Registry::Global().counter(obs::kServerConnectionsAcceptedTotal),
        obs::Registry::Global().counter(obs::kServerFramesReadTotal),
        obs::Registry::Global().counter(obs::kServerFramesWrittenTotal),
        obs::Registry::Global().counter(obs::kServerProtocolErrorsTotal),
        obs::Registry::Global().counter(obs::kServerDeadlineClosesTotal),
        obs::Registry::Global().counter(obs::kServerWorkShedTotal),
        obs::Registry::Global().gauge(obs::kServerConnectionsOpen),
        obs::Registry::Global().gauge(obs::kServerSessionsOpen),
        obs::Registry::Global().gauge(obs::kServerPendingWork),
        obs::Registry::Global().histogram(obs::kServerFrameDecodeNanos),
        obs::Registry::Global().histogram(obs::kServerFrameQueueNanos),
        obs::Registry::Global().histogram(obs::kServerFrameExecuteNanos),
    };
    return *m;
  }
};

/// "Name: attr=value, attr=value" — the CLI's question rendering, shared
/// verbatim so the remote UX matches the local one.
std::string RenderTuple(const rel::Relation& rel, size_t row) {
  std::string out = rel.schema().relation_name();
  out += ": ";
  for (size_t c = 0; c < rel.num_attributes(); ++c) {
    if (c) out += ", ";
    out += rel.schema().attribute_names()[c];
    out += "=";
    out += rel.at(row, c).ToString();
  }
  return out;
}

/// RETRY_LATER marks refusals the client should simply retry: admission /
/// queue shedding (kResourceExhausted) and transient faults (kUnavailable).
uint8_t RetryFlagFor(const util::Status& status) {
  return (status.code() == util::StatusCode::kResourceExhausted ||
          status.code() == util::StatusCode::kUnavailable)
             ? kErrorFlagRetryLater
             : 0;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), manager_(options_.runtime) {
  if (options_.workers < 1) options_.workers = 1;
}

Server::~Server() {
  if (started_ && !joined_) {
    RequestStop();
    (void)Wait();
  }
}

util::Status Server::Start() {
  if (started_) {
    return util::Status::FailedPrecondition("server already started");
  }
  JINFER_ASSIGN_OR_RETURN(Listener listener,
                          Listener::Open(options_.host, options_.port));
  listener_ = std::make_unique<Listener>(std::move(listener));
  port_ = listener_->port();
  started_ = true;
  event_thread_ = std::thread(&Server::EventLoop, this);
  worker_threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back(&Server::WorkerLoop, this);
  }
  return util::Status::OK();
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  wake_.Notify();
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  wake_.Notify();
}

util::Status Server::Wait() {
  if (!started_) {
    return util::Status::FailedPrecondition("server never started");
  }
  if (joined_) return serve_status_;
  event_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_done_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
  joined_ = true;
  return serve_status_;
}

StatsOkBody Server::Stats() {
  StatsOkBody out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  const runtime::SessionManager::Stats m = manager_.stats();
  out.sessions_opened = m.hosted_opened;
  out.sessions_open = manager_.hosted_open();
  out.sessions_completed = m.hosted_closed;
  out.sessions_aborted = m.hosted_aborted;
  out.sessions_reaped = m.hosted_reaped;
  out.sessions_shed = m.hosted_shed;
  const runtime::IndexCacheStats c = manager_.cache().stats();
  out.cache_hits = c.hits;
  out.cache_builds = c.builds;
  // v2: latency histograms from the process-wide registry, summarized.
  for (const obs::HistogramSummary& h : obs::SummarizeHistograms()) {
    StatsHistogramSummary s;
    s.name = h.name;
    s.count = h.count;
    s.sum = h.sum;
    s.p50 = h.p50;
    s.p99 = h.p99;
    out.histograms.push_back(std::move(s));
  }
  return out;
}

std::vector<uint8_t> Server::ErrorFrame(const util::Status& status,
                                        uint8_t flags) {
  ErrorBody body;
  body.code = static_cast<uint32_t>(status.code());
  body.flags = flags;
  body.message = status.message();
  return EncodeFrame(FrameType::kError, Encode(body));
}

// ---------------------------------------------------------------------------
// Event thread
// ---------------------------------------------------------------------------

void Server::EventLoop() {
  using Clock = Connection::Clock;
  Clock::time_point drain_at = Clock::time_point::max();

  while (true) {
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (drain_requested_.load(std::memory_order_acquire) &&
        !draining_.load(std::memory_order_relaxed)) {
      // Drain step 1: refuse new connections, keep serving accepted ones.
      draining_.store(true, std::memory_order_release);
      listener_->Close();
      drain_at = Clock::now() + options_.drain_deadline;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      if (conns_.empty()) break;  // Drained cleanly.
      if (Clock::now() >= drain_at) {
        // Drain step 3: patience is over — one goodbye frame, hard close.
        std::vector<int> fds;
        fds.reserve(conns_.size());
        for (const auto& [fd, conn] : conns_) fds.push_back(fd);
        for (int fd : fds) {
          auto it = conns_.find(fd);
          if (it == conns_.end()) continue;
          Connection& conn = *it->second;
          conn.Enqueue(ErrorFrame(util::Status::DeadlineExceeded(
                                      "server drain deadline reached"),
                                  kErrorFlagWillClose));
          (void)conn.OnWritable();  // Best effort; the close is unconditional.
          CloseConn(fd, /*abort_session=*/true);
        }
        break;
      }
    }

    // Close connections whose flush finished (or never started) while
    // close_after_flush is set — they have nothing left to wait for.
    {
      std::vector<int> done_fds;
      for (const auto& [fd, conn] : conns_) {
        if (conn->close_after_flush() && !conn->wants_write()) {
          done_fds.push_back(fd);
        }
      }
      for (int fd : done_fds) CloseConn(fd, /*abort_session=*/true);
    }

    // Build the poll set: wake pipe, listener (when accepting), and every
    // connection with read or write interest.
    std::vector<pollfd> pfds;
    pfds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
    const bool accepting = !draining_.load(std::memory_order_relaxed) &&
                           listener_->open() &&
                           conns_.size() < options_.max_connections;
    size_t listener_slot = 0;
    if (accepting) {
      listener_slot = pfds.size();
      pfds.push_back(pollfd{listener_->fd(), POLLIN, 0});
    }
    const size_t conn_base = pfds.size();
    std::vector<int> conn_fds;
    Clock::time_point earliest = drain_at;
    for (const auto& [fd, conn] : conns_) {
      short events = 0;
      if (conn->wants_read()) events |= POLLIN;
      if (conn->wants_write()) events |= POLLOUT;
      if (events != 0) {
        pfds.push_back(pollfd{fd, events, 0});
        conn_fds.push_back(fd);
      }
      earliest = std::min(earliest, conn->NextDeadline());
    }

    int timeout_ms = 500;  // Idle heartbeat (flag checks are cheap).
    if (earliest != Clock::time_point::max()) {
      const auto until = std::chrono::ceil<std::chrono::milliseconds>(
          earliest - Clock::now());
      timeout_ms = static_cast<int>(
          std::clamp<int64_t>(until.count(), 0, 500));
    }

    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      serve_status_ = util::Status::IoError(
          util::StrFormat("poll failed: %s", std::strerror(errno)));
      break;
    }

    if (pfds[0].revents != 0) wake_.Drain();
    // Gauge refresh on every loop round (the idle heartbeat bounds the
    // staleness at ~500 ms): the event thread owns these figures, so the
    // scrape path never has to take its locks.
    {
      ServerMetrics& metrics = ServerMetrics::Get();
      metrics.sessions_open.Set(
          static_cast<int64_t>(manager_.hosted_open()));
      size_t pending;
      {
        std::lock_guard<std::mutex> lock(work_mu_);
        pending = work_.size();
      }
      metrics.pending_work.Set(static_cast<int64_t>(pending));
    }
    ApplyCompletions();
    if (accepting && pfds[listener_slot].revents != 0) AcceptPending();
    for (size_t i = conn_base; i < pfds.size(); ++i) {
      auto it = conns_.find(pfds[i].fd);
      if (it == conns_.end()) continue;  // Closed earlier this round.
      const short re = pfds[i].revents;
      if (re == 0) continue;
      if (re & POLLOUT) {
        HandleWritable(*it->second);
        it = conns_.find(pfds[i].fd);
        if (it == conns_.end()) continue;
      }
      if (re & (POLLIN | POLLERR | POLLHUP)) {
        if (it->second->wants_read()) HandleReadable(*it->second);
      }
    }
    SweepDeadlines();
  }

  // Teardown: every remaining connection closes, every bound session
  // aborts (their IndexCache pins drop with them).
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) CloseConn(fd, /*abort_session=*/true);
  listener_->Close();
}

void Server::AcceptPending() {
  while (conns_.size() < options_.max_connections &&
         !draining_.load(std::memory_order_relaxed)) {
    auto sock = listener_->Accept();
    if (!sock.ok()) break;  // Nothing pending, or an injected accept fault.
    const int fd = sock->fd();
    conns_.emplace(fd, std::make_unique<Connection>(
                           std::move(*sock), next_generation_++,
                           options_.limits));
    ServerMetrics::Get().connections_accepted.Inc();
    ServerMetrics::Get().connections_open.Set(
        static_cast<int64_t>(conns_.size()));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
    stats_.connections_open = conns_.size();
  }
}

bool Server::EnqueueOrClose(Connection& conn, std::vector<uint8_t> bytes) {
  const int fd = conn.sock().fd();
  if (!conn.Enqueue(bytes)) {
    // Slow client: the write cap is the bound, the close is the policy.
    CloseConn(fd, /*abort_session=*/true);
    return false;
  }
  ServerMetrics::Get().frames_written.Inc();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.frames_written;
  return true;
}

void Server::SendErrorAndClose(Connection& conn, const util::Status& status,
                               uint8_t extra_flags) {
  const int fd = conn.sock().fd();
  if (!EnqueueOrClose(conn,
                      ErrorFrame(status, kErrorFlagWillClose | extra_flags))) {
    return;  // Already closed.
  }
  conn.CloseAfterFlush();
  auto flushed = conn.OnWritable();
  if (!flushed.ok() || *flushed) CloseConn(fd, /*abort_session=*/true);
}

void Server::HandleReadable(Connection& conn) {
  const int fd = conn.sock().fd();
  auto ev = conn.OnReadable();
  if (!ev.ok()) {
    if (ev.status().code() == util::StatusCode::kParseError) {
      // Malformed framing: say why (typed error frame), then close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
        ServerMetrics::Get().protocol_errors.Inc();
      }
      SendErrorAndClose(conn, ev.status(), 0);
    } else {
      // Broken socket, or an injected read/decode fault: this connection
      // dies; no frame was half-applied, no other tenant notices.
      CloseConn(fd, /*abort_session=*/true);
    }
    return;
  }
  switch (ev->kind) {
    case Connection::ReadEvent::kNoProgress:
      return;
    case Connection::ReadEvent::kPeerClosed:
      CloseConn(fd, /*abort_session=*/true);
      return;
    case Connection::ReadEvent::kFrame:
      break;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_read;
    ServerMetrics::Get().frames_read.Inc();
  }
  if (!IsRequestType(static_cast<uint8_t>(ev->frame.type))) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
      ServerMetrics::Get().protocol_errors.Inc();
    }
    SendErrorAndClose(
        conn, util::Status::ParseError("response-type frame from client"), 0);
    return;
  }

  Work work;
  work.fd = fd;
  work.generation = conn.generation();
  work.frame = std::move(ev->frame);
  work.conn_session = conn.session_id();
  work.enqueue_nanos = util::SystemClock()->NowNanos();
  // Load shedding: the work queue is the bound; a frame past it is refused
  // at once with RETRY_LATER instead of buffered toward an OOM.
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (work_.size() >= options_.max_pending_work) {
      shed = true;
    } else {
      work_.push_back(std::move(work));
    }
  }
  if (shed) {
    ServerMetrics::Get().work_shed.Inc();
    EnqueueOrClose(conn,
                   ErrorFrame(util::Status::ResourceExhausted(
                                  "server overloaded; retry later"),
                              kErrorFlagRetryLater));
    return;
  }
  conn.BeginWork();
  work_cv_.notify_one();
}

void Server::HandleWritable(Connection& conn) {
  const int fd = conn.sock().fd();
  auto flushed = conn.OnWritable();
  if (!flushed.ok()) {
    CloseConn(fd, /*abort_session=*/true);
    return;
  }
  if (*flushed && conn.close_after_flush()) {
    CloseConn(fd, /*abort_session=*/true);
  }
}

void Server::ApplyCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (auto& c : batch) {
    auto it = conns_.find(c.fd);
    if (it == conns_.end() || it->second->generation() != c.generation) {
      // The connection died while its frame was processing. A session the
      // worker just opened has no owner — abort it so its cache pin drops.
      if (c.bind == Completion::kBind) {
        (void)manager_.AbortHosted(c.session_id);
        std::lock_guard<std::mutex> lock(render_mu_);
        render_.erase(c.session_id);
      }
      continue;
    }
    Connection& conn = *it->second;
    conn.OnWorkDone();
    if (c.bind == Completion::kBind) {
      conn.BindSession(c.session_id);
    } else if (c.bind == Completion::kUnbind) {
      conn.UnbindSession();
    }
    if (!c.bytes.empty() && !EnqueueOrClose(conn, std::move(c.bytes))) {
      continue;
    }
    if (c.close_after) conn.CloseAfterFlush();
    if (conn.wants_write()) {
      HandleWritable(conn);
    } else if (conn.close_after_flush()) {
      CloseConn(c.fd, /*abort_session=*/true);
    }
  }
}

void Server::SweepDeadlines() {
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    const char* reason = conn.ExpiredReason();
    if (reason == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.deadline_closes;
      ServerMetrics::Get().deadline_closes.Inc();
    }
    // Name the span that ate the budget, filtered to this tenant's trace
    // when the connection has a bound session (DESIGN.md §13.2).
    obs::EmitFlightDump(
        util::StrFormat("connection fd=%d closed: %s", fd, reason),
        conn.session_id());
    // Best-effort goodbye; a deadline violator gets no flush patience.
    conn.Enqueue(ErrorFrame(util::Status::DeadlineExceeded(reason),
                            kErrorFlagWillClose));
    (void)conn.OnWritable();
    CloseConn(fd, /*abort_session=*/true);
  }
}

void Server::CloseConn(int fd, bool abort_session) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const uint64_t session = it->second->session_id();
  conns_.erase(it);
  if (abort_session && session != 0) {
    (void)manager_.AbortHosted(session);
    std::lock_guard<std::mutex> lock(render_mu_);
    render_.erase(session);
  }
  ServerMetrics::Get().connections_open.Set(
      static_cast<int64_t>(conns_.size()));
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.connections_open = conns_.size();
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Server::WorkerLoop() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return workers_done_ || !work_.empty(); });
      if (work_.empty()) return;  // workers_done_
      work = std::move(work_.front());
      work_.pop_front();
    }
    // Queue-wait span: enqueue on the event thread → claim here. Recorded
    // from the timestamps already taken, not a ScopedSpan, because the
    // waiting happened on no one's stack.
    {
      ServerMetrics& metrics = ServerMetrics::Get();
      const uint64_t now = util::SystemClock()->NowNanos();
      const uint64_t waited =
          now > work.enqueue_nanos ? now - work.enqueue_nanos : 0;
      metrics.frame_queue_nanos.Record(waited);
      obs::SpanRecord queued;
      queued.trace_id = work.conn_session;
      queued.start_nanos = work.enqueue_nanos;
      queued.duration_nanos = waited;
      queued.detail = static_cast<uint64_t>(work.frame.type);
      queued.kind = obs::SpanKind::kFrameQueue;
      obs::FlightRecorder::Global().Record(queued);
    }
    Completion done;
    {
      obs::ScopedSpan execute_span(
          obs::SpanKind::kFrameExecute, work.conn_session,
          &ServerMetrics::Get().frame_execute_nanos);
      execute_span.set_detail(static_cast<uint64_t>(work.frame.type));
      done = HandleFrame(std::move(work));
    }
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(done));
    }
    wake_.Notify();
  }
}

Server::Completion Server::Base(const Work& work) {
  Completion c;
  c.fd = work.fd;
  c.generation = work.generation;
  return c;
}

Server::Completion Server::HandleFrame(Work work) {
  switch (work.frame.type) {
    case FrameType::kOpenSession:
      return HandleOpenSession(work);
    case FrameType::kNextQuestion:
      return HandleNextQuestion(work);
    case FrameType::kAnswer:
      return HandleAnswer(work);
    case FrameType::kCloseSession:
      return HandleCloseSession(work);
    case FrameType::kStats:
      return HandleStats(work);
    case FrameType::kMetrics:
      return HandleMetrics(work);
    default: {
      Completion c = Base(work);
      c.bytes = ErrorFrame(
          util::Status::ParseError("unhandled request frame type"),
          kErrorFlagWillClose);
      c.close_after = true;
      return c;
    }
  }
}

Server::Completion Server::HandleOpenSession(const Work& work) {
  Completion c = Base(work);
  auto body = DecodeOpenSession(std::span<const uint8_t>(work.frame.payload));
  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    ServerMetrics::Get().protocol_errors.Inc();
    c.bytes = ErrorFrame(body.status(), kErrorFlagWillClose);
    c.close_after = true;
    return c;
  }
  if (work.conn_session != 0) {
    c.bytes = ErrorFrame(util::Status::FailedPrecondition(
                             "a session is already open on this connection"),
                         0);
    return c;
  }
  if (draining_.load(std::memory_order_acquire)) {
    c.bytes = ErrorFrame(
        util::Status::Unavailable("server is draining; retry elsewhere"),
        kErrorFlagRetryLater);
    return c;
  }
  auto kind = core::StrategyKindFromName(body->strategy);
  if (!kind.ok()) {
    c.bytes = ErrorFrame(kind.status(), 0);
    return c;
  }
  const bool server_compress = manager_.cache().options().build.compress;
  if ((body->compress != 0) != server_compress) {
    c.bytes = ErrorFrame(
        util::Status::InvalidArgument(util::StrFormat(
            "this server builds indexes with compress=%d; reopen with the "
            "matching flag",
            server_compress ? 1 : 0)),
        0);
    return c;
  }
  auto r = rel::ReadRelationCsvText(
      body->r_csv, body->r_name.empty() ? "R" : body->r_name);
  if (!r.ok()) {
    c.bytes = ErrorFrame(r.status(), 0);
    return c;
  }
  auto p = rel::ReadRelationCsvText(
      body->p_csv, body->p_name.empty() ? "P" : body->p_name);
  if (!p.ok()) {
    c.bytes = ErrorFrame(p.status(), 0);
    return c;
  }

  runtime::IndexTier tier = runtime::IndexTier::kMemory;
  std::shared_ptr<const core::SignatureIndex> index;
  auto session_id = manager_.OpenHosted(
      [&]() -> util::Result<runtime::Session> {
        JINFER_ASSIGN_OR_RETURN(runtime::TieredIndex tiered,
                                manager_.cache().GetOrBuildTiered(*r, *p));
        tier = tiered.tier;
        index = tiered.index;
        return runtime::Session(tiered.index,
                                core::MakeStrategy(*kind, body->seed));
      });
  if (!session_id.ok()) {
    // Admission shedding and transient cache faults are both "try again
    // later", not "you did something wrong".
    c.bytes = ErrorFrame(session_id.status(),
                         RetryFlagFor(session_id.status()));
    return c;
  }
  {
    std::lock_guard<std::mutex> lock(render_mu_);
    render_.emplace(*session_id,
                    RenderData{std::move(*r), std::move(*p)});
  }
  // Stamp the hosted id on the session's observability spans so a flight
  // dump can be filtered to this tenant.
  if (auto lease = manager_.AcquireHosted(*session_id); lease.ok()) {
    (*lease)->set_trace_id(*session_id);
    manager_.ReleaseHosted(*session_id);
  }
  OpenOkBody ok;
  ok.session_id = *session_id;
  ok.num_classes = index->num_classes();
  ok.num_tuples = index->num_tuples();
  ok.index_tier = static_cast<uint8_t>(tier);
  c.bytes = EncodeFrame(FrameType::kOpenOk, Encode(ok));
  c.bind = Completion::kBind;
  c.session_id = *session_id;
  return c;
}

/// Shared prologue of the session-scoped handlers: the frame must name the
/// session bound to its connection — anything else is a cross-tenant
/// protocol violation and closes the connection.
#define JINFER_SERVER_CHECK_OWNERSHIP(c, work, session_id)                 \
  do {                                                                     \
    if ((session_id) == 0 || (session_id) != (work).conn_session) {        \
      {                                                                    \
        std::lock_guard<std::mutex> lock(stats_mu_);                       \
        ++stats_.protocol_errors;                                          \
        ServerMetrics::Get().protocol_errors.Inc();                        \
      }                                                                    \
      (c).bytes = ErrorFrame(                                              \
          util::Status::FailedPrecondition(                                \
              "frame names a session this connection does not own"),       \
          kErrorFlagWillClose);                                            \
      (c).close_after = true;                                              \
      return (c);                                                          \
    }                                                                      \
  } while (0)

Server::Completion Server::HandleNextQuestion(const Work& work) {
  Completion c = Base(work);
  auto body = DecodeNextQuestion(std::span<const uint8_t>(work.frame.payload));
  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    ServerMetrics::Get().protocol_errors.Inc();
    c.bytes = ErrorFrame(body.status(), kErrorFlagWillClose);
    c.close_after = true;
    return c;
  }
  JINFER_SERVER_CHECK_OWNERSHIP(c, work, body->session_id);
  auto session = manager_.AcquireHosted(body->session_id);
  if (!session.ok()) {
    if (session.status().code() == util::StatusCode::kNotFound) {
      // Reaped or aborted underneath the client: unbind so it may reopen.
      c.bind = Completion::kUnbind;
      std::lock_guard<std::mutex> lock(render_mu_);
      render_.erase(body->session_id);
    }
    c.bytes = ErrorFrame(session.status(), 0);
    return c;
  }
  runtime::Session& s = **session;
  QuestionBody q;
  q.session_id = body->session_id;
  const std::optional<core::ClassId> next = s.NextQuestion();
  if (!next.has_value()) {
    q.finished = 1;
  } else {
    q.question_index = s.num_interactions();
    q.class_id = *next;
    const core::SignatureClass& cls = s.index().cls(*next);
    std::lock_guard<std::mutex> lock(render_mu_);
    auto rd = render_.find(body->session_id);
    if (rd != render_.end()) {
      q.r_text = RenderTuple(rd->second.r, cls.rep_r);
      q.p_text = RenderTuple(rd->second.p, cls.rep_p);
    }
  }
  q.predicate_text = s.index().omega().Format(s.CurrentPredicate());
  PredicateToWords(s.CurrentPredicate(), q.predicate_words);
  manager_.ReleaseHosted(body->session_id);
  c.bytes = EncodeFrame(FrameType::kQuestion, Encode(q));
  return c;
}

Server::Completion Server::HandleAnswer(const Work& work) {
  Completion c = Base(work);
  auto body = DecodeAnswer(std::span<const uint8_t>(work.frame.payload));
  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    ServerMetrics::Get().protocol_errors.Inc();
    c.bytes = ErrorFrame(body.status(), kErrorFlagWillClose);
    c.close_after = true;
    return c;
  }
  JINFER_SERVER_CHECK_OWNERSHIP(c, work, body->session_id);
  auto session = manager_.AcquireHosted(body->session_id);
  if (!session.ok()) {
    if (session.status().code() == util::StatusCode::kNotFound) {
      c.bind = Completion::kUnbind;
      std::lock_guard<std::mutex> lock(render_mu_);
      render_.erase(body->session_id);
    }
    c.bytes = ErrorFrame(session.status(), 0);
    return c;
  }
  runtime::Session& s = **session;
  const util::Status applied = s.Answer(body->label != 0
                                            ? core::Label::kPositive
                                            : core::Label::kNegative);
  if (!applied.ok()) {
    // InconsistentSample / no pending question: the session state is
    // untouched, the question (if any) stays pending — report and carry on.
    manager_.ReleaseHosted(body->session_id);
    c.bytes = ErrorFrame(applied, 0);
    return c;
  }
  AnswerOkBody ok;
  ok.session_id = body->session_id;
  ok.predicate_text = s.index().omega().Format(s.CurrentPredicate());
  PredicateToWords(s.CurrentPredicate(), ok.predicate_words);
  manager_.ReleaseHosted(body->session_id);
  c.bytes = EncodeFrame(FrameType::kAnswerOk, Encode(ok));
  return c;
}

Server::Completion Server::HandleCloseSession(const Work& work) {
  Completion c = Base(work);
  auto body =
      DecodeCloseSession(std::span<const uint8_t>(work.frame.payload));
  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    ServerMetrics::Get().protocol_errors.Inc();
    c.bytes = ErrorFrame(body.status(), kErrorFlagWillClose);
    c.close_after = true;
    return c;
  }
  JINFER_SERVER_CHECK_OWNERSHIP(c, work, body->session_id);
  // Snapshot the result under a lease (the index, and with it the Ω
  // formatter, dies with the session), then close for real.
  auto session = manager_.AcquireHosted(body->session_id);
  if (!session.ok()) {
    if (session.status().code() == util::StatusCode::kNotFound) {
      c.bind = Completion::kUnbind;
      std::lock_guard<std::mutex> lock(render_mu_);
      render_.erase(body->session_id);
    }
    c.bytes = ErrorFrame(session.status(), 0);
    return c;
  }
  runtime::Session& s = **session;
  CloseOkBody ok;
  ok.session_id = body->session_id;
  ok.num_interactions = s.num_interactions();
  ok.predicate_text = s.index().omega().Format(s.CurrentPredicate());
  PredicateToWords(s.CurrentPredicate(), ok.predicate_words);
  manager_.ReleaseHosted(body->session_id);
  const auto closed = manager_.CloseHosted(body->session_id);
  if (!closed.ok()) {
    // An abort won the race between release and close; the snapshot above
    // is still the session's final word.
    (void)closed;
  }
  {
    std::lock_guard<std::mutex> lock(render_mu_);
    render_.erase(body->session_id);
  }
  c.bind = Completion::kUnbind;
  c.bytes = EncodeFrame(FrameType::kCloseOk, Encode(ok));
  return c;
}

Server::Completion Server::HandleStats(const Work& work) {
  Completion c = Base(work);
  auto body = DecodeStats(std::span<const uint8_t>(work.frame.payload));
  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    ServerMetrics::Get().protocol_errors.Inc();
    c.bytes = ErrorFrame(body.status(), kErrorFlagWillClose);
    c.close_after = true;
    return c;
  }
  c.bytes = EncodeFrame(FrameType::kStatsOk, Encode(Stats()));
  return c;
}

Server::Completion Server::HandleMetrics(const Work& work) {
  Completion c = Base(work);
  auto body = DecodeMetrics(std::span<const uint8_t>(work.frame.payload));
  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    ServerMetrics::Get().protocol_errors.Inc();
    c.bytes = ErrorFrame(body.status(), kErrorFlagWillClose);
    c.close_after = true;
    return c;
  }
  MetricsOkBody ok;
  ok.text = obs::RenderPrometheusText();
  c.bytes = EncodeFrame(FrameType::kMetricsOk, Encode(ok));
  return c;
}

#undef JINFER_SERVER_CHECK_OWNERSHIP

}  // namespace server
}  // namespace jinfer
