#include "server/client.h"

#include <utility>

#include "util/string_util.h"

namespace jinfer {
namespace server {

namespace {

/// Rebuilds a Status from its wire encoding. Unknown codes (a newer peer)
/// degrade to kIoError rather than misclassify.
util::Status StatusFromWire(uint32_t code, std::string message) {
  using util::Status;
  using util::StatusCode;
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kInconsistentSample:
      return Status::InconsistentSample(std::move(message));
    case StatusCode::kCapacityExceeded:
      return Status::CapacityExceeded(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
  }
  return Status::IoError(std::move(message));
}

}  // namespace

bool RetryLater(const util::Status& status) {
  // The server sets kErrorFlagRetryLater exactly for these two codes
  // (server.cc RetryFlagFor), so the taxonomy carries the flag for free —
  // no side channel needed once the error is a Status again.
  return status.code() == util::StatusCode::kResourceExhausted ||
         status.code() == util::StatusCode::kUnavailable;
}

util::Result<Client> Client::Connect(const std::string& host,
                                     uint16_t port) {
  return Connect(host, port, Options{});
}

util::Result<Client> Client::Connect(const std::string& host, uint16_t port,
                                     Options options) {
  JINFER_ASSIGN_OR_RETURN(util::Socket sock, util::ConnectTcp(host, port));
  if (options.io_timeout.count() > 0) {
    JINFER_RETURN_NOT_OK(util::SetIoTimeout(sock, options.io_timeout));
  }
  return Client(std::move(sock), options);
}

util::Result<Frame> Client::ReadResponse() {
  uint8_t header_bytes[kFrameHeaderBytes];
  JINFER_RETURN_NOT_OK(
      util::ReadExact(sock_, std::span<uint8_t>(header_bytes)));
  JINFER_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(std::span<const uint8_t>(header_bytes),
                        options_.max_frame_payload));
  std::vector<uint8_t> payload(header.payload_bytes);
  if (!payload.empty()) {
    JINFER_RETURN_NOT_OK(
        util::ReadExact(sock_, std::span<uint8_t>(payload)));
  }
  return DecodeFramePayload(header, payload);
}

util::Result<Frame> Client::RoundTrip(FrameType type,
                                      std::span<const uint8_t> payload) {
  const std::vector<uint8_t> wire = EncodeFrame(type, payload);
  JINFER_RETURN_NOT_OK(util::WriteAll(sock_, wire));
  JINFER_ASSIGN_OR_RETURN(Frame response, ReadResponse());
  if (response.type == FrameType::kError) {
    JINFER_ASSIGN_OR_RETURN(ErrorBody err, DecodeError(response.payload));
    return StatusFromWire(err.code, std::move(err.message));
  }
  return response;
}

namespace {

util::Status WrongResponse(FrameType got, FrameType want) {
  return util::Status::ParseError(
      util::StrFormat("expected %s response, got %s", FrameTypeName(want),
                      FrameTypeName(got)));
}

}  // namespace

util::Result<OpenOkBody> Client::OpenSession(const OpenSessionBody& body) {
  JINFER_ASSIGN_OR_RETURN(
      Frame response, RoundTrip(FrameType::kOpenSession, Encode(body)));
  if (response.type != FrameType::kOpenOk) {
    return WrongResponse(response.type, FrameType::kOpenOk);
  }
  JINFER_ASSIGN_OR_RETURN(OpenOkBody ok, DecodeOpenOk(response.payload));
  session_id_ = ok.session_id;
  return ok;
}

util::Result<QuestionBody> Client::NextQuestion() {
  NextQuestionBody req;
  req.session_id = session_id_;
  JINFER_ASSIGN_OR_RETURN(
      Frame response, RoundTrip(FrameType::kNextQuestion, Encode(req)));
  if (response.type != FrameType::kQuestion) {
    return WrongResponse(response.type, FrameType::kQuestion);
  }
  return DecodeQuestion(response.payload);
}

util::Result<AnswerOkBody> Client::Answer(bool positive) {
  AnswerBody req;
  req.session_id = session_id_;
  req.label = positive ? 1 : 0;
  JINFER_ASSIGN_OR_RETURN(Frame response,
                          RoundTrip(FrameType::kAnswer, Encode(req)));
  if (response.type != FrameType::kAnswerOk) {
    return WrongResponse(response.type, FrameType::kAnswerOk);
  }
  return DecodeAnswerOk(response.payload);
}

util::Result<CloseOkBody> Client::CloseSession() {
  CloseSessionBody req;
  req.session_id = session_id_;
  JINFER_ASSIGN_OR_RETURN(
      Frame response, RoundTrip(FrameType::kCloseSession, Encode(req)));
  if (response.type != FrameType::kCloseOk) {
    return WrongResponse(response.type, FrameType::kCloseOk);
  }
  JINFER_ASSIGN_OR_RETURN(CloseOkBody ok, DecodeCloseOk(response.payload));
  session_id_ = 0;
  return ok;
}

util::Result<StatsOkBody> Client::ServerStats() {
  JINFER_ASSIGN_OR_RETURN(
      Frame response, RoundTrip(FrameType::kStats, Encode(StatsBody{})));
  if (response.type != FrameType::kStatsOk) {
    return WrongResponse(response.type, FrameType::kStatsOk);
  }
  return DecodeStatsOk(response.payload);
}

util::Result<MetricsOkBody> Client::ServerMetrics() {
  JINFER_ASSIGN_OR_RETURN(
      Frame response, RoundTrip(FrameType::kMetrics, Encode(MetricsBody{})));
  if (response.type != FrameType::kMetricsOk) {
    return WrongResponse(response.type, FrameType::kMetricsOk);
  }
  return DecodeMetricsOk(response.payload);
}

}  // namespace server
}  // namespace jinfer
