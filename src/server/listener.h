// Listener: the accepting end of the serving front end. A thin wrapper
// over util::ListenTcp/AcceptTcp that adds the server.accept failpoint —
// the injection site for "accept() failed under fd pressure" chaos
// schedules — and remembers the bound port (the tests bind port 0).
//
// Closing the listener is the first step of a graceful drain: the socket
// goes away, new connections are refused by the kernel, and every
// already-accepted connection keeps being served (server.cc).

#ifndef JINFER_SERVER_LISTENER_H_
#define JINFER_SERVER_LISTENER_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/socket.h"

namespace jinfer {
namespace server {

class Listener {
 public:
  /// Binds and listens on host:port (port 0 = ephemeral, read via port()).
  static util::Result<Listener> Open(const std::string& host, uint16_t port);

  /// Accepts one pending connection. kUnavailable when none is pending or
  /// the server.accept failpoint injected a transient accept failure —
  /// either way, poll again; the pending connection is not lost.
  util::Result<util::Socket> Accept();

  int fd() const { return sock_.fd(); }
  uint16_t port() const { return port_; }
  bool open() const { return sock_.valid(); }

  /// Stops accepting (drain step 1). Idempotent.
  void Close() { sock_.Close(); }

 private:
  Listener(util::Socket sock, uint16_t port)
      : sock_(std::move(sock)), port_(port) {}

  util::Socket sock_;
  uint16_t port_ = 0;
};

}  // namespace server
}  // namespace jinfer

#endif  // JINFER_SERVER_LISTENER_H_
