#include "server/connection.h"

#include <algorithm>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace jinfer {
namespace server {

namespace {

// Read chunk: large enough that one OpenSession (CSV upload) needs few
// syscalls, small enough that a stack of idle connections stays cheap.
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

util::Result<Connection::ReadEvent> Connection::OnReadable() {
  JINFER_RETURN_NOT_OK(util::FailpointHit("server.conn.read"));
  while (true) {
    // Assemble from what is already buffered before reading more.
    if (!pending_header_.has_value() && in_.size() >= kFrameHeaderBytes) {
      JINFER_ASSIGN_OR_RETURN(
          pending_header_,
          DecodeFrameHeader(std::span<const uint8_t>(in_.data(),
                                                     kFrameHeaderBytes),
                            limits_.max_frame_payload));
    }
    if (pending_header_.has_value()) {
      const size_t need = kFrameHeaderBytes + pending_header_->payload_bytes;
      if (in_.size() >= need) {
        static obs::Histogram& decode_nanos =
            obs::Registry::Global().histogram(obs::kServerFrameDecodeNanos);
        obs::ScopedSpan decode_span(obs::SpanKind::kFrameDecode, session_id_,
                                    &decode_nanos);
        decode_span.set_detail(pending_header_->payload_bytes);
        JINFER_RETURN_NOT_OK(util::FailpointHit("server.frame.decode"));
        JINFER_ASSIGN_OR_RETURN(
            Frame frame,
            DecodeFramePayload(
                *pending_header_,
                std::span<const uint8_t>(in_.data() + kFrameHeaderBytes,
                                         pending_header_->payload_bytes)));
        in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(need));
        pending_header_.reset();
        // The read deadline restarts per frame: cleared at a boundary,
        // re-armed when pipelined bytes of the next frame already sit here.
        frame_start_ =
            in_.empty() ? Clock::time_point{} : Clock::now();
        last_activity_ = Clock::now();
        ReadEvent ev;
        ev.kind = ReadEvent::kFrame;
        ev.frame = std::move(frame);
        return ev;
      }
    }

    // Need more bytes. Read one chunk; EAGAIN means report no progress.
    const size_t old = in_.size();
    in_.resize(old + kReadChunk);
    auto n = util::ReadSome(
        sock_, std::span<uint8_t>(in_.data() + old, kReadChunk));
    if (!n.ok()) {
      in_.resize(old);
      if (n.status().code() == util::StatusCode::kUnavailable) {
        return ReadEvent{};  // Would block — poll will call us back.
      }
      return n.status();  // kIoError: broken socket.
    }
    in_.resize(old + *n);
    if (*n == 0) {
      // EOF. At a frame boundary it is an orderly close; inside a frame it
      // is a truncation the peer must hear about (the malformed-frame
      // corpus's mid-frame-EOF case).
      if (in_.empty()) {
        ReadEvent ev;
        ev.kind = ReadEvent::kPeerClosed;
        return ev;
      }
      return util::Status::ParseError("connection closed mid-frame");
    }
    if (frame_start_ == Clock::time_point{}) frame_start_ = Clock::now();
  }
}

bool Connection::Enqueue(std::span<const uint8_t> bytes) {
  const size_t pending = out_.size() - out_pos_;
  if (pending + bytes.size() > limits_.write_buffer_cap) return false;
  if (pending == 0) {
    out_.clear();
    out_pos_ = 0;
    write_start_ = Clock::now();
  }
  out_.insert(out_.end(), bytes.begin(), bytes.end());
  return true;
}

util::Result<bool> Connection::OnWritable() {
  JINFER_RETURN_NOT_OK(util::FailpointHit("server.conn.write"));
  while (out_pos_ < out_.size()) {
    auto n = util::WriteSome(
        sock_, std::span<const uint8_t>(out_.data() + out_pos_,
                                        out_.size() - out_pos_));
    if (!n.ok()) {
      if (n.status().code() == util::StatusCode::kUnavailable) return false;
      return n.status();
    }
    out_pos_ += *n;
  }
  out_.clear();
  out_pos_ = 0;
  write_start_ = Clock::time_point{};
  last_activity_ = Clock::now();
  return true;
}

Connection::Clock::time_point Connection::NextDeadline() const {
  auto earliest = Clock::time_point::max();
  if (frame_start_ != Clock::time_point{} &&
      limits_.read_deadline.count() > 0) {
    earliest = std::min(earliest, frame_start_ + limits_.read_deadline);
  }
  if (wants_write() && limits_.write_deadline.count() > 0) {
    earliest = std::min(earliest, write_start_ + limits_.write_deadline);
  }
  if (!busy_ && limits_.idle_timeout.count() > 0) {
    earliest = std::min(earliest, last_activity_ + limits_.idle_timeout);
  }
  return earliest;
}

const char* Connection::ExpiredReason() const {
  const auto now = Clock::now();
  if (frame_start_ != Clock::time_point{} &&
      limits_.read_deadline.count() > 0 &&
      now >= frame_start_ + limits_.read_deadline) {
    return "read deadline exceeded";
  }
  if (wants_write() && limits_.write_deadline.count() > 0 &&
      now >= write_start_ + limits_.write_deadline) {
    return "write deadline exceeded";
  }
  if (!busy_ && limits_.idle_timeout.count() > 0 &&
      now >= last_activity_ + limits_.idle_timeout) {
    return "idle timeout exceeded";
  }
  return nullptr;
}

}  // namespace server
}  // namespace jinfer
