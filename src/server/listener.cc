#include "server/listener.h"

#include "util/failpoint.h"

namespace jinfer {
namespace server {

util::Result<Listener> Listener::Open(const std::string& host,
                                      uint16_t port) {
  JINFER_ASSIGN_OR_RETURN(util::Socket sock, util::ListenTcp(host, port));
  JINFER_ASSIGN_OR_RETURN(uint16_t bound, util::BoundPort(sock));
  return Listener(std::move(sock), bound);
}

util::Result<util::Socket> Listener::Accept() {
  JINFER_RETURN_NOT_OK(util::FailpointHit("server.accept"));
  return util::AcceptTcp(sock_);
}

}  // namespace server
}  // namespace jinfer
