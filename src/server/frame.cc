#include "server/frame.h"

#include <algorithm>

#include "util/checksum.h"
#include "util/string_util.h"

namespace jinfer {
namespace server {

bool IsRequestType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kOpenSession:
    case FrameType::kNextQuestion:
    case FrameType::kAnswer:
    case FrameType::kCloseSession:
    case FrameType::kStats:
    case FrameType::kMetrics:
      return true;
    default:
      return false;
  }
}

bool IsKnownFrameType(uint8_t type) {
  if (IsRequestType(type)) return true;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kOpenOk:
    case FrameType::kQuestion:
    case FrameType::kAnswerOk:
    case FrameType::kCloseOk:
    case FrameType::kStatsOk:
    case FrameType::kError:
    case FrameType::kMetricsOk:
      return true;
    default:
      return false;
  }
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kOpenSession: return "OpenSession";
    case FrameType::kNextQuestion: return "NextQuestion";
    case FrameType::kAnswer: return "Answer";
    case FrameType::kCloseSession: return "CloseSession";
    case FrameType::kStats: return "Stats";
    case FrameType::kMetrics: return "Metrics";
    case FrameType::kOpenOk: return "OpenOk";
    case FrameType::kQuestion: return "Question";
    case FrameType::kAnswerOk: return "AnswerOk";
    case FrameType::kCloseOk: return "CloseOk";
    case FrameType::kStatsOk: return "StatsOk";
    case FrameType::kError: return "Error";
    case FrameType::kMetricsOk: return "MetricsOk";
  }
  return "Unknown";
}

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 std::span<const uint8_t> payload) {
  FrameHeader header;
  header.type = static_cast<uint8_t>(type);
  header.payload_bytes = static_cast<uint32_t>(payload.size());
  header.checksum = util::Checksum64Of(payload.data(), payload.size());
  std::vector<uint8_t> out(kFrameHeaderBytes + payload.size());
  std::memcpy(out.data(), &header, kFrameHeaderBytes);
  std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return out;
}

util::Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> bytes,
                                            uint32_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    return util::Status::ParseError(util::StrFormat(
        "truncated frame header: %zu of %zu bytes", bytes.size(),
        kFrameHeaderBytes));
  }
  FrameHeader header;
  std::memcpy(&header, bytes.data(), kFrameHeaderBytes);
  if (header.magic != kFrameMagic) {
    return util::Status::ParseError(
        util::StrFormat("bad frame magic 0x%08x", header.magic));
  }
  if (header.version != kProtocolVersion) {
    return util::Status::ParseError(util::StrFormat(
        "unsupported protocol version %u", unsigned{header.version}));
  }
  if (!IsKnownFrameType(header.type)) {
    return util::Status::ParseError(
        util::StrFormat("unknown frame type 0x%02x", unsigned{header.type}));
  }
  const uint32_t cap = std::min(max_payload, kMaxFramePayload);
  if (header.payload_bytes > cap) {
    return util::Status::ParseError(util::StrFormat(
        "oversized frame: %u payload bytes exceeds the %u-byte bound",
        header.payload_bytes, cap));
  }
  return header;
}

util::Result<Frame> DecodeFramePayload(const FrameHeader& header,
                                       std::span<const uint8_t> payload) {
  if (payload.size() != header.payload_bytes) {
    return util::Status::ParseError(util::StrFormat(
        "frame payload length mismatch: have %zu bytes, header says %u",
        payload.size(), header.payload_bytes));
  }
  const uint64_t checksum = util::Checksum64Of(payload.data(), payload.size());
  if (checksum != header.checksum) {
    return util::Status::ParseError(util::StrFormat(
        "frame checksum mismatch: computed %016llx, header says %016llx",
        static_cast<unsigned long long>(checksum),
        static_cast<unsigned long long>(header.checksum)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

util::Status WireReader::Need(size_t n) const {
  if (bytes_.size() - pos_ < n) {
    return util::Status::ParseError(util::StrFormat(
        "payload truncated: need %zu bytes at offset %zu of %zu", n, pos_,
        bytes_.size()));
  }
  return util::Status::OK();
}

util::Result<uint8_t> WireReader::U8() {
  JINFER_RETURN_NOT_OK(Need(1));
  return bytes_[pos_++];
}

util::Result<uint32_t> WireReader::U32() {
  JINFER_RETURN_NOT_OK(Need(4));
  uint32_t v;
  std::memcpy(&v, bytes_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

util::Result<uint64_t> WireReader::U64() {
  JINFER_RETURN_NOT_OK(Need(8));
  uint64_t v;
  std::memcpy(&v, bytes_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

util::Result<std::string> WireReader::Str() {
  JINFER_ASSIGN_OR_RETURN(const uint32_t len, U32());
  JINFER_RETURN_NOT_OK(Need(len));
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return s;
}

util::Status WireReader::Finish() const {
  if (pos_ != bytes_.size()) {
    return util::Status::ParseError(util::StrFormat(
        "payload has %zu trailing bytes", bytes_.size() - pos_));
  }
  return util::Status::OK();
}

}  // namespace server
}  // namespace jinfer
