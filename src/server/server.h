// Server: the fault-tolerant network serving front end (DESIGN.md §11).
//
// One poll()-driven event thread owns the listener and every Connection;
// a small worker pool executes frame handlers against the hosted-session
// API of runtime::SessionManager. The event thread never blocks on
// inference and the workers never touch a socket, so a slow client cannot
// wedge a worker and a slow build cannot wedge the event loop. Exactly one
// frame per connection is in flight at a time — reading pauses while a
// frame is being processed, which is the natural per-connection
// backpressure and what serializes a session's transcript.
//
// Failure-domain map (the robustness contract this PR exists for):
//   malformed frame      typed kError frame (kParseError) then close —
//                        never a crash, never trust a length prefix
//   read/write/idle      connection closed with kDeadlineExceeded, its
//     deadline expiry    hosted session aborted (IndexCache pin released)
//   overload             admission (Options::runtime.max_sessions) and the
//                        work queue (max_pending_work) both shed with a
//                        kResourceExhausted RETRY_LATER frame — refuse,
//                        never queue without bound
//   slow client          write buffer capped; overflow closes the
//                        connection instead of growing the heap
//   SIGTERM              RequestDrain (async-signal-safe): stop accepting,
//                        serve in-flight sessions to completion or the
//                        drain deadline, then exit with Status::OK
//   injected faults      server.accept / server.conn.read /
//                        server.conn.write / server.frame.decode — a
//                        tripped connection dies alone; every surviving
//                        session's transcript is bit-identical to a
//                        fault-free in-process run (tests/chaos/).

#ifndef JINFER_SERVER_SERVER_H_
#define JINFER_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "runtime/session_manager.h"
#include "server/connection.h"
#include "server/frame.h"
#include "server/listener.h"
#include "server/protocol.h"
#include "util/result.h"
#include "util/socket.h"

namespace jinfer {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the real one via port().

  /// Frame-processing threads (inference runs here). >= 1.
  int workers = 2;

  /// Accepted connections beyond this are not accepted (the listener is
  /// simply not polled while full — the kernel backlog absorbs bursts).
  size_t max_connections = 256;

  /// Bound on dispatched-but-unprocessed frames. A frame arriving past the
  /// bound is answered immediately with kResourceExhausted RETRY_LATER and
  /// never queued — load shedding, not buffering.
  size_t max_pending_work = 64;

  /// Per-connection deadlines and caps (connection.h).
  ConnectionLimits limits;

  /// Budget for a graceful drain: after RequestDrain, in-flight
  /// connections get this long to finish before being closed.
  std::chrono::milliseconds drain_deadline{3000};

  /// The hosted runtime underneath: worker cache, max_sessions admission
  /// bound, build options. (threads/steps_per_slice only affect RunAll.)
  runtime::SessionManager::Options runtime;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event thread + workers. After OK, the
  /// server is reachable on port().
  util::Status Start();

  /// The bound port (resolves an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Begins a graceful drain: stop accepting, finish in-flight work within
  /// drain_deadline, then Wait() returns OK. Async-signal-safe (an atomic
  /// store plus one write() on the wake pipe) — call it from a SIGTERM
  /// handler directly.
  void RequestDrain();

  /// Hard stop: close everything now. Wait() still returns OK.
  void RequestStop();

  /// Joins the event thread and workers; returns the serve status (OK for
  /// a drain or stop, an error if the event loop died on its own).
  util::Status Wait();

  /// Point-in-time counters — the same snapshot a kStats frame returns.
  StatsOkBody Stats();

  /// The hosted runtime (tests reach in for leak/pin assertions).
  runtime::SessionManager& manager() { return manager_; }

 private:
  /// A dispatched request frame, bound to its connection by (fd,
  /// generation) — fds are reused by the kernel, generations never are.
  struct Work {
    int fd = -1;
    uint64_t generation = 0;
    Frame frame;
    uint64_t conn_session = 0;  ///< Session bound to the connection, 0=none.
    uint64_t enqueue_nanos = 0;  ///< When the event thread queued it (obs:
                                 ///< the frame-queue wait span).
  };

  /// A worker's answer, routed back through the event thread (the only
  /// thread allowed to touch a Connection).
  struct Completion {
    int fd = -1;
    uint64_t generation = 0;
    std::vector<uint8_t> bytes;  ///< Encoded response frame.
    bool close_after = false;    ///< Close once the response is flushed.
    enum Bind : uint8_t { kNone, kBind, kUnbind } bind = kNone;
    uint64_t session_id = 0;  ///< For kBind (aborted if the conn is gone).
  };

  /// What a hosted session needs to render questions: the uploaded
  /// relations (the index stores codes, not values).
  struct RenderData {
    rel::Relation r, p;
  };

  void EventLoop();
  void WorkerLoop();

  // --- Event-thread helpers (no locking on conns_) ---------------------
  void AcceptPending();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void ApplyCompletions();
  void SweepDeadlines();
  void CloseConn(int fd, bool abort_session);
  void SendErrorAndClose(Connection& conn, const util::Status& status,
                         uint8_t extra_flags);
  bool EnqueueOrClose(Connection& conn, std::vector<uint8_t> bytes);

  // --- Worker-side frame handlers --------------------------------------
  static Completion Base(const Work& work);
  Completion HandleFrame(Work work);
  Completion HandleOpenSession(const Work& work);
  Completion HandleNextQuestion(const Work& work);
  Completion HandleAnswer(const Work& work);
  Completion HandleCloseSession(const Work& work);
  Completion HandleStats(const Work& work);
  Completion HandleMetrics(const Work& work);

  static std::vector<uint8_t> ErrorFrame(const util::Status& status,
                                         uint8_t flags);

  ServerOptions options_;
  runtime::SessionManager manager_;
  util::WakePipe wake_;

  std::unique_ptr<Listener> listener_;
  uint16_t port_ = 0;
  std::thread event_thread_;
  std::vector<std::thread> worker_threads_;
  bool started_ = false;
  bool joined_ = false;
  util::Status serve_status_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};

  // Event-thread-only connection table.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  uint64_t next_generation_ = 1;

  // Work / completion queues.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;
  bool workers_done_ = false;

  std::mutex done_mu_;
  std::deque<Completion> done_;

  // Rendering context per hosted session (workers, under render_mu_).
  std::mutex render_mu_;
  std::unordered_map<uint64_t, RenderData> render_;

  // Server-level counters (event thread + workers).
  mutable std::mutex stats_mu_;
  StatsOkBody stats_;
};

}  // namespace server
}  // namespace jinfer

#endif  // JINFER_SERVER_SERVER_H_
