// Random k-CNF generator for property tests and the §6 scaling bench.

#ifndef JINFER_SAT_RANDOM_CNF_H_
#define JINFER_SAT_RANDOM_CNF_H_

#include "sat/cnf.h"
#include "util/rng.h"

namespace jinfer {
namespace sat {

/// Uniform random k-CNF: each clause draws k distinct variables and
/// independent polarities. num_vars must be ≥ k. At clause/variable ratio
/// ≈ 4.27 and k = 3 this produces the classic hard region.
Cnf RandomKCnf(int num_vars, size_t num_clauses, int k, util::Rng& rng);

inline Cnf Random3Cnf(int num_vars, size_t num_clauses, util::Rng& rng) {
  return RandomKCnf(num_vars, num_clauses, 3, rng);
}

}  // namespace sat
}  // namespace jinfer

#endif  // JINFER_SAT_RANDOM_CNF_H_
