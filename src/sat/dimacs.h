// DIMACS CNF text format: parsing and serialization.

#ifndef JINFER_SAT_DIMACS_H_
#define JINFER_SAT_DIMACS_H_

#include <string>

#include "sat/cnf.h"
#include "util/result.h"

namespace jinfer {
namespace sat {

/// Parses DIMACS CNF text ("c" comments, "p cnf <vars> <clauses>" header,
/// 0-terminated clauses; clauses may span lines).
util::Result<Cnf> ParseDimacs(const std::string& text);

/// Serializes to DIMACS (same as Cnf::ToString; provided for symmetry).
std::string ToDimacs(const Cnf& cnf);

}  // namespace sat
}  // namespace jinfer

#endif  // JINFER_SAT_DIMACS_H_
