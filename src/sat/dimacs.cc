#include "sat/dimacs.h"

#include <sstream>

#include "util/string_util.h"

namespace jinfer {
namespace sat {

util::Result<Cnf> ParseDimacs(const std::string& text) {
  std::istringstream is(text);
  std::string token;
  int num_vars = -1;
  size_t num_clauses = 0;
  Cnf cnf;
  Clause current;
  size_t clauses_seen = 0;

  while (is >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      if (!(is >> fmt) || fmt != "cnf" || !(is >> num_vars >> num_clauses)) {
        return util::Status::ParseError("malformed DIMACS problem line");
      }
      if (num_vars < 0) {
        return util::Status::ParseError("negative variable count");
      }
      cnf = Cnf(num_vars);
      continue;
    }
    if (num_vars < 0) {
      return util::Status::ParseError(
          "clause data before the 'p cnf' problem line");
    }
    int lit;
    try {
      lit = std::stoi(token);
    } catch (...) {
      return util::Status::ParseError("bad DIMACS token: " + token);
    }
    if (lit == 0) {
      cnf.AddClause(std::move(current));
      current.clear();
      ++clauses_seen;
    } else {
      if (VarOf(lit) > num_vars) {
        return util::Status::ParseError(util::StrFormat(
            "literal %d exceeds declared variable count %d", lit, num_vars));
      }
      current.push_back(lit);
    }
  }
  if (!current.empty()) {
    return util::Status::ParseError("last clause not 0-terminated");
  }
  if (clauses_seen != num_clauses) {
    return util::Status::ParseError(
        util::StrFormat("declared %zu clauses, found %zu", num_clauses,
                        clauses_seen));
  }
  return cnf;
}

std::string ToDimacs(const Cnf& cnf) { return cnf.ToString(); }

}  // namespace sat
}  // namespace jinfer
