// DPLL SAT solver: recursive search with unit propagation, pure-literal
// elimination, and a most-occurrences branching heuristic.
//
// Sized for this library's workloads — CONS⋉ encodings and the appendix
// 3SAT reductions, hundreds of variables — not industrial SAT. Tests
// cross-validate it against truth-table enumeration on small formulas.

#ifndef JINFER_SAT_DPLL_H_
#define JINFER_SAT_DPLL_H_

#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace jinfer {
namespace sat {

struct SolveStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
};

struct SolveResult {
  bool satisfiable = false;
  /// Model when satisfiable: assignment[v] for v in 1..num_vars (index 0
  /// unused). Variables untouched by the search default to false.
  std::vector<bool> assignment;
  SolveStats stats;
};

class DpllSolver {
 public:
  /// Decides satisfiability of the formula. Deterministic.
  SolveResult Solve(const Cnf& cnf);
};

/// Reference oracle: enumerates all 2^n assignments. Only for tests;
/// aborts beyond 24 variables.
bool SatisfiableByEnumeration(const Cnf& cnf);

}  // namespace sat
}  // namespace jinfer

#endif  // JINFER_SAT_DPLL_H_
