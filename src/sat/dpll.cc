#include "sat/dpll.h"

#include <algorithm>

namespace jinfer {
namespace sat {

namespace {

enum : int8_t { kUnset = -1, kFalse = 0, kTrue = 1 };

class Search {
 public:
  explicit Search(const Cnf& cnf)
      : cnf_(cnf), values_(static_cast<size_t>(cnf.num_vars()) + 1, kUnset) {}

  bool Run(SolveStats* stats) {
    stats_ = stats;
    return Dpll();
  }

  std::vector<bool> Model() const {
    std::vector<bool> model(values_.size(), false);
    for (size_t v = 1; v < values_.size(); ++v) model[v] = values_[v] == kTrue;
    return model;
  }

 private:
  int8_t LitValue(Literal lit) const {
    int8_t v = values_[static_cast<size_t>(VarOf(lit))];
    if (v == kUnset) return kUnset;
    return (v == kTrue) == IsPositive(lit) ? kTrue : kFalse;
  }

  /// Propagates all unit clauses. Returns false on conflict. Appends the
  /// assigned variables to trail_.
  bool PropagateUnits() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : cnf_.clauses()) {
        Literal unit = 0;
        bool satisfied = false;
        int unassigned = 0;
        for (Literal lit : clause) {
          int8_t val = LitValue(lit);
          if (val == kTrue) {
            satisfied = true;
            break;
          }
          if (val == kUnset) {
            ++unassigned;
            unit = lit;
            if (unassigned > 1) break;
          }
        }
        if (satisfied || unassigned > 1) continue;
        if (unassigned == 0) {
          ++stats_->conflicts;
          return false;  // All literals false: conflict.
        }
        Assign(unit);
        ++stats_->propagations;
        changed = true;
      }
    }
    return true;
  }

  /// Assigns every variable occurring only in one polarity among
  /// not-yet-satisfied clauses.
  void EliminatePureLiterals() {
    std::vector<uint8_t> polarity(values_.size(), 0);  // bit0 pos, bit1 neg
    for (const Clause& clause : cnf_.clauses()) {
      bool satisfied = false;
      for (Literal lit : clause) {
        if (LitValue(lit) == kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Literal lit : clause) {
        if (LitValue(lit) == kUnset) {
          polarity[static_cast<size_t>(VarOf(lit))] |=
              IsPositive(lit) ? 1 : 2;
        }
      }
    }
    for (size_t v = 1; v < values_.size(); ++v) {
      if (values_[v] != kUnset) continue;
      if (polarity[v] == 1) Assign(static_cast<Literal>(v));
      if (polarity[v] == 2) Assign(-static_cast<Literal>(v));
    }
  }

  /// Unassigned literal occurring most often in unsatisfied clauses;
  /// 0 when every clause is satisfied.
  Literal PickBranchLiteral() const {
    std::vector<uint32_t> pos(values_.size(), 0), neg(values_.size(), 0);
    bool any = false;
    for (const Clause& clause : cnf_.clauses()) {
      bool satisfied = false;
      for (Literal lit : clause) {
        if (LitValue(lit) == kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Literal lit : clause) {
        if (LitValue(lit) != kUnset) continue;
        any = true;
        if (IsPositive(lit)) {
          ++pos[static_cast<size_t>(VarOf(lit))];
        } else {
          ++neg[static_cast<size_t>(VarOf(lit))];
        }
      }
    }
    if (!any) return 0;
    size_t best_var = 0;
    uint32_t best_count = 0;
    for (size_t v = 1; v < values_.size(); ++v) {
      uint32_t c = pos[v] + neg[v];
      if (c > best_count) {
        best_count = c;
        best_var = v;
      }
    }
    JINFER_CHECK(best_var != 0, "no branch variable despite open clauses");
    return pos[best_var] >= neg[best_var] ? static_cast<Literal>(best_var)
                                          : -static_cast<Literal>(best_var);
  }

  void Assign(Literal lit) {
    values_[static_cast<size_t>(VarOf(lit))] = IsPositive(lit) ? kTrue
                                                               : kFalse;
    trail_.push_back(VarOf(lit));
  }

  void UnwindTo(size_t mark) {
    while (trail_.size() > mark) {
      values_[static_cast<size_t>(trail_.back())] = kUnset;
      trail_.pop_back();
    }
  }

  bool Dpll() {
    size_t mark = trail_.size();
    if (!PropagateUnits()) {
      UnwindTo(mark);
      return false;
    }
    EliminatePureLiterals();

    Literal branch = PickBranchLiteral();
    if (branch == 0) return true;  // Every clause satisfied.

    ++stats_->decisions;
    size_t before_branch = trail_.size();
    Assign(branch);
    if (Dpll()) return true;
    UnwindTo(before_branch);

    Assign(-branch);
    if (Dpll()) return true;
    UnwindTo(mark);
    return false;
  }

  const Cnf& cnf_;
  std::vector<int8_t> values_;
  std::vector<int> trail_;
  SolveStats* stats_ = nullptr;
};

}  // namespace

SolveResult DpllSolver::Solve(const Cnf& cnf) {
  SolveResult result;
  Search search(cnf);
  result.satisfiable = search.Run(&result.stats);
  if (result.satisfiable) result.assignment = search.Model();
  return result;
}

bool SatisfiableByEnumeration(const Cnf& cnf) {
  JINFER_CHECK(cnf.num_vars() <= 24, "enumeration oracle limited to 24 vars");
  size_t n = static_cast<size_t>(cnf.num_vars());
  std::vector<bool> assignment(n + 1, false);
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    for (size_t v = 1; v <= n; ++v) assignment[v] = (bits >> (v - 1)) & 1;
    if (cnf.IsSatisfiedBy(assignment)) return true;
  }
  return false;
}

}  // namespace sat
}  // namespace jinfer
