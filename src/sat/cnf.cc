#include "sat/cnf.h"

#include <sstream>

namespace jinfer {
namespace sat {

void Cnf::AddClause(Clause clause) {
  for (Literal lit : clause) {
    JINFER_CHECK(lit != 0, "literal 0 in clause");
    JINFER_CHECK(VarOf(lit) <= num_vars_,
                 "literal %d references variable beyond num_vars %d", lit,
                 num_vars_);
  }
  clauses_.push_back(std::move(clause));
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  JINFER_CHECK(assignment.size() >= static_cast<size_t>(num_vars_) + 1,
               "assignment too short: %zu for %d vars", assignment.size(),
               num_vars_);
  for (const Clause& clause : clauses_) {
    bool satisfied = false;
    for (Literal lit : clause) {
      if (assignment[static_cast<size_t>(VarOf(lit))] == IsPositive(lit)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::ostringstream os;
  os << "p cnf " << num_vars_ << ' ' << clauses_.size() << '\n';
  for (const Clause& clause : clauses_) {
    for (Literal lit : clause) os << lit << ' ';
    os << "0\n";
  }
  return os.str();
}

}  // namespace sat
}  // namespace jinfer
