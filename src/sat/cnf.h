// CNF formulas: the propositional substrate behind §6.
//
// The paper proves CONS⋉ (semijoin-consistency) NP-complete by reduction
// from 3SAT. We exercise both directions: semi::reduction_3sat encodes 3CNF
// formulas as semijoin instances, and semi::consistency decides CONS⋉ by
// encoding it back into CNF and solving with the DPLL solver (sat/dpll.h).
//
// Conventions: variables are 1-based ints; a literal is +v or -v (DIMACS
// style); a clause is a disjunction of literals; a formula is a conjunction
// of clauses.

#ifndef JINFER_SAT_CNF_H_
#define JINFER_SAT_CNF_H_

#include <string>
#include <vector>

#include "util/check.h"

namespace jinfer {
namespace sat {

/// DIMACS-style literal: +v for variable v, -v for its negation. Never 0.
using Literal = int;

inline int VarOf(Literal lit) {
  JINFER_CHECK(lit != 0, "literal 0");
  return lit > 0 ? lit : -lit;
}
inline bool IsPositive(Literal lit) { return lit > 0; }

using Clause = std::vector<Literal>;

class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(int num_vars) : num_vars_(num_vars) {}

  int num_vars() const { return num_vars_; }
  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Clause>& clauses() const { return clauses_; }

  /// Allocates a fresh variable and returns its index.
  int NewVar() { return ++num_vars_; }

  /// Adds a clause; literals must reference variables ≤ num_vars (call
  /// NewVar first). The empty clause makes the formula unsatisfiable.
  void AddClause(Clause clause);

  /// Convenience for unit/binary/ternary clauses.
  void AddUnit(Literal a) { AddClause({a}); }
  void AddBinary(Literal a, Literal b) { AddClause({a, b}); }
  void AddTernary(Literal a, Literal b, Literal c) { AddClause({a, b, c}); }

  /// Evaluates under a full assignment (assignment[v] for v in 1..n).
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  std::string ToString() const;

 private:
  int num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace sat
}  // namespace jinfer

#endif  // JINFER_SAT_CNF_H_
