#include "sat/random_cnf.h"

#include <algorithm>

namespace jinfer {
namespace sat {

Cnf RandomKCnf(int num_vars, size_t num_clauses, int k, util::Rng& rng) {
  JINFER_CHECK(k >= 1 && num_vars >= k, "need num_vars >= k >= 1");
  Cnf cnf(num_vars);
  std::vector<int> vars(static_cast<size_t>(k));
  for (size_t c = 0; c < num_clauses; ++c) {
    // Draw k distinct variables by rejection (k is tiny).
    for (size_t i = 0; i < vars.size(); ++i) {
      while (true) {
        int v = static_cast<int>(
                    rng.NextBelow(static_cast<uint64_t>(num_vars))) +
                1;
        if (std::find(vars.begin(), vars.begin() + static_cast<long>(i), v) ==
            vars.begin() + static_cast<long>(i)) {
          vars[i] = v;
          break;
        }
      }
    }
    Clause clause;
    clause.reserve(vars.size());
    for (int v : vars) {
      clause.push_back(rng.NextBool(0.5) ? v : -v);
    }
    cnf.AddClause(std::move(clause));
  }
  return cnf;
}

}  // namespace sat
}  // namespace jinfer
